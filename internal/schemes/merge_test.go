package schemes

import (
	"testing"

	"ftmm/internal/layout"
	"ftmm/internal/sched"
)

// mergeScenarioResult is one full run of the hot-title scenario.
type mergeScenarioResult struct {
	reports    []*sched.CycleReport
	deliveries map[int][]sched.Delivery
	// arenaGets counts physical track-buffer fetches — the thing merging
	// is supposed to reduce without touching any report field.
	arenaGets int64
	peak      int
}

// runMergeScenario drives a Streaming RAID engine through a fixed
// hot-title scenario: a lockstep pack of four viewers on obj0, a fifth
// viewer of obj0 offset by three groups (same title, never mergeable), a
// viewer of obj1, a late joiner who lands exactly on the pack's group, a
// mid-run drive failure (shared reads must reconstruct), and a mid-run
// cancellation of one pack member (share-aware release).
func runMergeScenario(t *testing.T, r *rig, workers int, disableMerge bool) mergeScenarioResult {
	t.Helper()
	cfg := r.config()
	cfg.Workers = workers
	cfg.SlotsPerDisk = 8
	cfg.DisableMergedReads = disableMerge
	e, err := NewStreamingRAID(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obj0, obj1 := r.object(t, 0), r.object(t, 1)
	for i := 0; i < 4; i++ {
		if _, err := e.AddStream(obj0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.AddStreamAt(obj0, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddStream(obj1); err != nil {
		t.Fatal(err)
	}

	res := mergeScenarioResult{deliveries: map[int][]sched.Delivery{}}
	for cyc := 0; cyc < 60; cyc++ {
		switch cyc {
		case 2:
			// Joins the pack mid-flight: the pack's next read is group 2.
			if _, err := e.AddStreamAt(obj0, 2); err != nil {
				t.Fatal(err)
			}
		case 5:
			if err := e.FailDisk(1); err != nil {
				t.Fatal(err)
			}
		case 8:
			if err := e.CancelStream(1); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := e.Step()
		if err != nil {
			t.Fatalf("cycle %d: %v", cyc, err)
		}
		rep = rep.Clone()
		res.reports = append(res.reports, rep)
		for _, d := range rep.Delivered {
			res.deliveries[d.StreamID] = append(res.deliveries[d.StreamID], d)
		}
		if cyc > 2 && e.Active() == 0 {
			break
		}
	}
	if e.Active() != 0 {
		t.Fatal("streams still active after 60 cycles")
	}
	// Two more Steps release the engine's refs on the last deliveries
	// (the double-buffered report keeps them for two cycles); after that
	// every track buffer must be back home.
	for i := 0; i < 2; i++ {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.BufferInUse(); n != 0 {
		t.Fatalf("buffer pool still holds %d tracks after drain", n)
	}
	if n := e.Arena().Outstanding(); n != 0 {
		t.Fatalf("%d shared track buffers never released", n)
	}
	res.arenaGets, _, _ = e.Arena().Stats()
	res.peak = e.BufferPeak()
	return res
}

// TestMergedReadsBitExactReports pins the core contract of same-title
// read merging: every CycleReport — deliveries (with content bytes),
// hiccups, read/reconstruction counters, buffer occupancy — is
// bit-identical to the unmerged engine's, across admission, a drive
// failure, and a sharer's cancellation; only the physical arena traffic
// shrinks. It also pins shard-count invariance of the merged path.
func TestMergedReadsBitExactReports(t *testing.T) {
	// Fresh rigs per run: FailDisk mutates the farm. newRig is
	// deterministic, so the runs see identical farms and content.
	rig := func() *rig { return newRig(t, 10, 5, 2, 12, layout.DedicatedParity) }
	merged := runMergeScenario(t, rig(), 1, false)
	unmerged := runMergeScenario(t, rig(), 1, true)

	if len(merged.reports) != len(unmerged.reports) {
		t.Fatalf("merged ran %d cycles, unmerged %d", len(merged.reports), len(unmerged.reports))
	}
	for i := range merged.reports {
		if !merged.reports[i].Equal(unmerged.reports[i]) {
			t.Fatalf("cycle %d: merged report differs from unmerged:\n got %s\nwant %s",
				i, stripData(merged.reports[i]), stripData(unmerged.reports[i]))
		}
	}
	if merged.peak != unmerged.peak {
		t.Fatalf("merged buffer peak %d, unmerged %d", merged.peak, unmerged.peak)
	}
	// Merging must have actually merged: the pack shares one physical
	// group read per cycle, so the merged run fetches far fewer buffers.
	if merged.arenaGets >= unmerged.arenaGets {
		t.Fatalf("merging saved no physical reads: %d gets merged vs %d unmerged",
			merged.arenaGets, unmerged.arenaGets)
	}

	// Shard-count invariance holds through the merged read path too.
	for _, workers := range []int{2, 8} {
		alt := runMergeScenario(t, rig(), workers, false)
		if len(alt.reports) != len(merged.reports) {
			t.Fatalf("workers=%d ran %d cycles, serial %d", workers, len(alt.reports), len(merged.reports))
		}
		for i := range alt.reports {
			if !alt.reports[i].Equal(merged.reports[i]) {
				t.Fatalf("workers=%d cycle %d: report differs from serial merged run", workers, i)
			}
		}
	}

	// Every surviving sharer got the full, byte-exact title. Stream 1
	// was cancelled mid-run; streams 4 (offset) and 6 (late joiner)
	// started mid-title, so only the lockstep survivors 0, 2, 3 and the
	// solo viewer 5 expect complete objects.
	r := rig()
	for _, id := range []int{0, 2, 3} {
		verifyStream(t, r, r.object(t, 0), merged.deliveries[id], nil)
	}
	verifyStream(t, r, r.object(t, 1), merged.deliveries[5], nil)
}
