package schemes

import (
	"bytes"
	"fmt"
	"testing"

	"ftmm/internal/disk"
	"ftmm/internal/diskmodel"
	"ftmm/internal/layout"
	"ftmm/internal/sched"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// rig is a small farm with placed, materialized objects for engine tests.
type rig struct {
	farm    *disk.Farm
	lay     *layout.Layout
	content map[string][]byte
}

// newRig builds d drives in clusters of c with enough tracks, placing
// nObjects objects of groupsEach parity groups at staggered start
// clusters.
func newRig(t *testing.T, d, c, nObjects, groupsEach int, placement layout.Placement) *rig {
	t.Helper()
	p := diskmodel.Table1()
	// Size drives generously for the objects we place.
	tracksNeeded := (nObjects*groupsEach*c)/d + 10
	p.Capacity = units.ByteSize(tracksNeeded+groupsEach*c) * p.TrackSize
	farm, err := disk.NewFarm(d, c, p)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := layout.ForFarm(farm, placement)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{farm: farm, lay: lay, content: map[string][]byte{}}
	trackSize := int(p.TrackSize)
	for i := 0; i < nObjects; i++ {
		id := fmt.Sprintf("obj%d", i)
		tracks := groupsEach * (c - 1)
		content := workload.SyntheticContent(id, tracks*trackSize)
		obj, err := lay.AddObject(id, tracks, i%lay.Clusters(), units.MPEG1)
		if err != nil {
			t.Fatal(err)
		}
		if err := layout.WriteObject(farm, obj, content); err != nil {
			t.Fatal(err)
		}
		r.content[id] = content
	}
	return r
}

func (r *rig) object(t *testing.T, i int) *layout.Object {
	t.Helper()
	obj, ok := r.lay.Object(fmt.Sprintf("obj%d", i))
	if !ok {
		t.Fatalf("obj%d not placed", i)
	}
	return obj
}

func (r *rig) config() Config {
	return Config{Farm: r.farm, Layout: r.lay, Rate: units.MPEG1}
}

// stepN runs exactly n cycles, collecting deliveries and hiccups.
func stepN(t *testing.T, e Simulator, n int) (map[int][]sched.Delivery, []sched.Hiccup, []*sched.CycleReport) {
	t.Helper()
	deliveries := map[int][]sched.Delivery{}
	var hiccups []sched.Hiccup
	var reports []*sched.CycleReport
	for i := 0; i < n; i++ {
		rep, err := e.Step()
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		// Reports (and their delivered bytes) are valid only until the
		// next Step; clone to retain.
		rep = rep.Clone()
		reports = append(reports, rep)
		for _, d := range rep.Delivered {
			deliveries[d.StreamID] = append(deliveries[d.StreamID], d)
		}
		hiccups = append(hiccups, rep.Hiccups...)
	}
	return deliveries, hiccups, reports
}

// merge folds b's per-stream deliveries into a.
func merge(a, b map[int][]sched.Delivery) map[int][]sched.Delivery {
	for id, ds := range b {
		a[id] = append(a[id], ds...)
	}
	return a
}

// runToCompletion steps the engine until no stream is active (or the
// cycle bound is hit), collecting deliveries and hiccups.
func runToCompletion(t *testing.T, e Simulator, maxCycles int) (map[int][]sched.Delivery, []sched.Hiccup, []*sched.CycleReport) {
	t.Helper()
	deliveries := map[int][]sched.Delivery{}
	var hiccups []sched.Hiccup
	var reports []*sched.CycleReport
	for i := 0; i < maxCycles; i++ {
		rep, err := e.Step()
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		rep = rep.Clone()
		reports = append(reports, rep)
		for _, d := range rep.Delivered {
			deliveries[d.StreamID] = append(deliveries[d.StreamID], d)
		}
		hiccups = append(hiccups, rep.Hiccups...)
		if e.Active() == 0 {
			return deliveries, hiccups, reports
		}
	}
	t.Fatalf("%s: streams still active after %d cycles", e.Name(), maxCycles)
	return nil, nil, nil
}

// verifyStream checks a stream's deliveries reconstruct the object's
// content exactly, with lost tracks excused.
func verifyStream(t *testing.T, r *rig, obj *layout.Object, deliveries []sched.Delivery, lost map[int]bool) {
	t.Helper()
	content := r.content[obj.ID]
	trackSize := int(r.farm.Params().TrackSize)
	got := map[int][]byte{}
	for _, d := range deliveries {
		if d.ObjectID != obj.ID {
			t.Fatalf("stream delivered wrong object %q", d.ObjectID)
		}
		if _, dup := got[d.Track]; dup {
			t.Fatalf("track %d delivered twice", d.Track)
		}
		got[d.Track] = d.Data
	}
	for i := 0; i < obj.Tracks; i++ {
		data, ok := got[i]
		if !ok {
			if lost[i] {
				continue
			}
			t.Fatalf("object %s track %d never delivered", obj.ID, i)
		}
		if lost != nil && lost[i] {
			t.Fatalf("object %s track %d delivered but expected lost", obj.ID, i)
		}
		want := content[i*trackSize : (i+1)*trackSize]
		if !bytes.Equal(data, want) {
			t.Fatalf("object %s track %d content differs", obj.ID, i)
		}
	}
}
