package schemes

import (
	"fmt"
	"time"

	"ftmm/internal/layout"
	"ftmm/internal/sched"
)

// Declustered is the fifth scheme, beyond the paper's four: parity
// declustering via block designs. Normal-mode behaviour is Streaming
// RAID's — every active stream reads one whole parity group of C tracks
// per cycle and delivers the group staged in the previous cycle, so any
// single drive failure per declustering group is masked with zero
// hiccups. The difference is where groups live: the layout maps each
// group onto a C-drive block of a BIBD over a G-drive declustering
// group (layout.NewDeclustered), so consecutive groups touch different
// drive subsets and a failed drive's rebuild reads every survivor of
// its group at rate (C-1)/(G-1) instead of saturating C-1 cluster
// mates. The rebuild window shrinks by the same factor; with the
// default G = 2C-1 it halves.
type Declustered struct {
	engineCore
	streams []*groupStream
}

// NewDeclustered builds the engine. The layout must use declustered
// parity placement (the farm's clusters are the G-drive declustering
// groups).
func NewDeclustered(cfg Config) (*Declustered, error) {
	if cfg.Layout != nil && cfg.Layout.Placement() != layout.DeclusteredParity {
		return nil, fmt.Errorf("schemes: declustered parity needs a declustered layout, got %v", cfg.Layout.Placement())
	}
	core, err := newEngineCore(cfg, cfg.Layout.GroupWidth())
	if err != nil {
		return nil, err
	}
	return &Declustered{engineCore: core}, nil
}

// Name implements Simulator.
func (e *Declustered) Name() string { return "Declustered-parity" }

// CycleTime implements Simulator: Tcyc = (C-1)·B/b0, as for SR — C here
// is the parity group size, not the declustering group size.
func (e *Declustered) CycleTime() time.Duration {
	return e.cfg.Farm.Params().CycleTime(e.cfg.Layout.GroupWidth(), e.cfg.Rate)
}

// Active implements Simulator.
func (e *Declustered) Active() int { return activeCount(e.streams) }

// StreamProgress reports the next track owed to the stream and its
// object's total tracks; ok is false for unknown streams.
func (e *Declustered) StreamProgress(id int) (next, total int, ok bool) {
	return streamProgress(e.streams, id)
}

// AddStream implements Simulator.
func (e *Declustered) AddStream(obj *layout.Object) (int, error) {
	return e.AddStreamAt(obj, 0)
}

// AddStreamAt admits a stream starting at the given parity group. The
// admission unit is the declustering group (the layout's "cluster"):
// a stream's per-cycle reads land on the C drives of one block within
// it, and which block varies per group, so in the worst case every
// stream of the declustering group reads the same drive in the same
// cycle. Capping streams per declustering group at the per-disk slot
// budget keeps that worst case schedulable — a deliberately
// conservative floor under the analytic N (which assumes the design
// spreads load evenly), consistent with the other engines flooring
// earlier than their analytic bounds.
func (e *Declustered) AddStreamAt(obj *layout.Object, startGroup int) (int, error) {
	if err := checkStartGroup(obj, startGroup); err != nil {
		return 0, err
	}
	start := obj.Groups[startGroup].Cluster
	if e.groupClusterLoad(e.streams)[start] >= e.slotsPerDisk {
		return 0, fmt.Errorf("schemes: declustering group %d is at its %d-stream capacity", start, e.slotsPerDisk)
	}
	id := e.allocStreamID()
	e.streams = append(e.streams, &groupStream{
		Stream:    sched.Stream{ID: id, Obj: obj, NextDeliver: startGroup * e.cfg.Layout.GroupWidth()},
		nextGroup: startGroup,
	})
	return id, nil
}

// CancelStream stops serving a stream immediately; its buffers are
// returned. It is not a degradation event.
func (e *Declustered) CancelStream(id int) error {
	return e.cancelGroupStream(e.streams, id)
}

// SetStreamRate sets a stream's playback multiplier; see
// StreamingRAID.SetStreamRate — the argument carries over because
// consecutive groups rotate declustering groups the same way.
func (e *Declustered) SetStreamRate(id, rate int) error {
	return e.setGroupStreamRate(e.streams, id, rate)
}

// WeightedActive sums max(rate,1) over active streams.
func (e *Declustered) WeightedActive() int { return weightedActive(e.streams) }

// Step implements Simulator. The cycle structure is Streaming RAID's:
// a read phase staging each stream's next parity group (same-title
// lockstep reads merged through the per-cluster stage cache), then a
// delivery phase draining the groups staged last cycle. A group whose
// block lost one drive is reconstructed from parity in place; a block
// that lost two drives is unrecoverable and surfaces as hiccups.
func (e *Declustered) Step() (*sched.CycleReport, error) {
	ctx, err := e.beginCycle()
	if err != nil {
		return nil, err
	}

	merge := !e.cfg.DisableMergedReads
	if merge {
		e.ensureStageCaches()
	}
	plan := e.groupReadPlan(e.streams, nil)
	if err := e.runClusters(ctx, func(shard *sched.CycleContext, cl int) error {
		var cache map[*layout.Group]*bufferedGroup
		if merge && len(plan[cl]) > 1 {
			cache = e.stageCacheFor(cl)
		}
		for _, ent := range plan[cl] {
			staged, err := e.stageGroup(shard, ent.g, cache)
			if err != nil {
				return err
			}
			if ent.slot < 0 {
				ent.s.staged = staged
			} else {
				ent.s.stagedExtra[ent.slot] = staged
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	if err := e.deliverDouble(ctx, e.streams, "parity group unrecoverable"); err != nil {
		return nil, err
	}

	return e.endCycle(ctx), nil
}
