package schemes

import (
	"testing"

	"ftmm/internal/layout"
)

// Steady-state per-cycle allocation budgets. The data path itself is
// allocation-free (arena-recycled track buffers, persistent cycle
// context, reused report slices); what remains is small fixed-size
// bookkeeping — bufferedGroup headers, groupRead slices, sync.Pool put
// boxes, map churn — all independent of track size. The budgets are
// deliberately loose (roughly 2x observed) so they catch a regression
// back to per-track allocation (hundreds of KB per cycle) without
// flaking on allocator noise.
const (
	srCycleAllocBudget = 50
	ncCycleAllocBudget = 20
)

// steadyStateAllocs measures allocations per Step once the engine is
// warmed up (arena populated, report slices grown).
func steadyStateAllocs(t *testing.T, e Simulator, warmup, runs int) float64 {
	t.Helper()
	for i := 0; i < warmup; i++ {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return testing.AllocsPerRun(runs, func() {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSRSteadyStateCycleAllocBudget pins the Streaming RAID engine to a
// fixed small per-cycle allocation budget in steady state. Workers must
// be 1: spawning read-phase goroutines allocates by design.
func TestSRSteadyStateCycleAllocBudget(t *testing.T) {
	r := newRig(t, 10, 5, 2, 60, layout.DedicatedParity)
	cfg := r.config()
	cfg.Workers = 1
	e, err := NewStreamingRAID(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := e.AddStream(r.object(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	n := steadyStateAllocs(t, e, 5, 20)
	t.Logf("Streaming RAID steady-state allocs/cycle: %.1f", n)
	if n > srCycleAllocBudget {
		t.Errorf("Streaming RAID allocates %.1f per cycle, budget %d", n, srCycleAllocBudget)
	}
	if e.Active() == 0 {
		t.Fatal("streams finished during measurement; grow the rig")
	}
}

// TestNCSteadyStateCycleAllocBudget pins the Non-clustered engine's
// normal-mode cycle to a fixed small allocation budget.
func TestNCSteadyStateCycleAllocBudget(t *testing.T) {
	r := newRig(t, 10, 5, 2, 60, layout.DedicatedParity)
	cfg := r.config()
	cfg.Workers = 1
	e, err := NewNonClustered(cfg, SimpleSwitchover, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := e.AddStream(r.object(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	n := steadyStateAllocs(t, e, 5, 20)
	t.Logf("Non-clustered steady-state allocs/cycle: %.1f", n)
	if n > ncCycleAllocBudget {
		t.Errorf("Non-clustered allocates %.1f per cycle, budget %d", n, ncCycleAllocBudget)
	}
	if e.Active() == 0 {
		t.Fatal("streams finished during measurement; grow the rig")
	}
}
