package schemes

import (
	"fmt"
	"reflect"
	"testing"

	"ftmm/internal/layout"
	"ftmm/internal/sched"
)

// runDeterminismScenario drives one engine through a fixed scenario —
// staggered admissions, a mid-run drive failure — and returns every
// per-cycle report plus the final buffer peak.
func runDeterminismScenario(t *testing.T, e Simulator, r *rig, nStreams int) ([]*sched.CycleReport, int) {
	t.Helper()
	var reports []*sched.CycleReport
	for cyc := 0; cyc < 60; cyc++ {
		if cyc < nStreams {
			if _, err := e.AddStream(r.object(t, cyc)); err != nil {
				t.Fatalf("cycle %d: admit: %v", cyc, err)
			}
		}
		if cyc == 10 {
			if err := e.FailDisk(1); err != nil {
				t.Fatalf("cycle %d: fail disk: %v", cyc, err)
			}
		}
		rep, err := e.Step()
		if err != nil {
			t.Fatalf("cycle %d: %v", cyc, err)
		}
		// Retained across Steps, so clone (reports are valid only until
		// the next Step).
		reports = append(reports, rep.Clone())
		if cyc >= nStreams && e.Active() == 0 {
			break
		}
	}
	return reports, e.BufferPeak()
}

// TestWorkerCountInvariance pins the core determinism contract of the
// parallel cycle engine: for a fixed scenario the per-cycle reports are
// bit-identical whether the engine runs serially or with many workers,
// even on a single-CPU machine (workers beyond GOMAXPROCS still change
// the shard partitioning).
func TestWorkerCountInvariance(t *testing.T) {
	const nStreams = 4
	cases := []struct {
		name      string
		placement layout.Placement
		build     func(cfg Config) (Simulator, error)
	}{
		{"sr", layout.DedicatedParity, func(cfg Config) (Simulator, error) {
			return NewStreamingRAID(cfg)
		}},
		{"sg", layout.DedicatedParity, func(cfg Config) (Simulator, error) {
			return NewStaggeredGroup(cfg)
		}},
		{"nc-simple", layout.DedicatedParity, func(cfg Config) (Simulator, error) {
			return NewNonClustered(cfg, SimpleSwitchover, 2)
		}},
		{"nc-alternate", layout.DedicatedParity, func(cfg Config) (Simulator, error) {
			return NewNonClustered(cfg, AlternateSwitchover, 2)
		}},
		{"ib", layout.IntermixedParity, func(cfg Config) (Simulator, error) {
			return NewImprovedBandwidth(cfg, 2)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var baseline []*sched.CycleReport
			var basePeak int
			for _, workers := range []int{1, 2, 8} {
				// A fresh rig per run: FailDisk mutates the farm.
				r := newRig(t, 10, 5, nStreams, 6, tc.placement)
				cfg := r.config()
				cfg.Workers = workers
				e, err := tc.build(cfg)
				if err != nil {
					t.Fatal(err)
				}
				reports, peak := runDeterminismScenario(t, e, r, nStreams)
				if workers == 1 {
					baseline, basePeak = reports, peak
					continue
				}
				if len(reports) != len(baseline) {
					t.Fatalf("workers=%d ran %d cycles, serial ran %d",
						workers, len(reports), len(baseline))
				}
				for i := range reports {
					if !reflect.DeepEqual(reports[i], baseline[i]) {
						t.Fatalf("workers=%d: cycle %d report differs from serial:\n got %+v\nwant %+v",
							workers, i, stripData(reports[i]), stripData(baseline[i]))
					}
				}
				if peak != basePeak {
					t.Fatalf("workers=%d: buffer peak %d, serial %d", workers, peak, basePeak)
				}
			}
		})
	}
}

// stripData summarizes a report for failure messages without dumping
// track payloads.
func stripData(rep *sched.CycleReport) string {
	tracks := make([]string, 0, len(rep.Delivered))
	for _, d := range rep.Delivered {
		tracks = append(tracks, fmt.Sprintf("s%d:%s/%d", d.StreamID, d.ObjectID, d.Track))
	}
	return fmt.Sprintf("{cycle %d delivered %v hiccups %d reads %d/%d finished %v terminated %v inuse %d}",
		rep.Cycle, tracks, len(rep.Hiccups), rep.DataReads, rep.ParityReads,
		rep.Finished, rep.Terminated, rep.BufferInUse)
}

// TestWorkerCountInvarianceMidFail covers the Improved-bandwidth
// mid-cycle failure path, which must fall back to the serial schedule to
// keep the half-cycle allowance semantics.
func TestWorkerCountInvarianceMidFail(t *testing.T) {
	const nStreams = 4
	var baseline []*sched.CycleReport
	for _, workers := range []int{1, 8} {
		r := newRig(t, 10, 5, nStreams, 6, layout.IntermixedParity)
		cfg := r.config()
		cfg.Workers = workers
		e, err := NewImprovedBandwidth(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		var reports []*sched.CycleReport
		for cyc := 0; cyc < 40; cyc++ {
			if cyc < nStreams {
				if _, err := e.AddStream(r.object(t, cyc)); err != nil {
					t.Fatalf("cycle %d: admit: %v", cyc, err)
				}
			}
			if cyc == 8 {
				if err := e.FailDiskMidCycle(2); err != nil {
					t.Fatal(err)
				}
			}
			rep, err := e.Step()
			if err != nil {
				t.Fatalf("cycle %d: %v", cyc, err)
			}
			reports = append(reports, rep.Clone())
			if cyc >= nStreams && e.Active() == 0 {
				break
			}
		}
		if workers == 1 {
			baseline = reports
			continue
		}
		if !reflect.DeepEqual(reports, baseline) {
			t.Fatalf("workers=%d: mid-cycle failure run differs from serial", workers)
		}
	}
}
