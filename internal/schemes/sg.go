package schemes

import (
	"fmt"
	"time"

	"ftmm/internal/buffer"
	"ftmm/internal/layout"
	"ftmm/internal/sched"
)

// StaggeredGroup is the §2 memory-saving variant: the layout and the
// failure tolerance are exactly Streaming RAID's, but the cycle is the
// display time of a single track (B/b0) and a stream reads its whole next
// parity group only once every C-1 cycles, delivering one track per cycle
// in between. Streams are staggered across read phases, so their buffer
// sawtooths interleave (Figure 4) and the farm-wide peak is roughly half
// of Streaming RAID's.
type StaggeredGroup struct {
	cfg          Config
	slotsPerDisk int
	cycle        int
	nextID       int
	streams      []*sgStream
	pool         *buffer.Pool
}

type sgStream struct {
	sched.Stream
	// phase selects the stream's read cycles: cycle ≡ phase (mod C-1).
	phase int
	// nextGroup is the next parity-group index to read.
	nextGroup int
	// buf is the group draining one track per cycle; pending is the group
	// read this cycle, installed once buf finishes draining.
	buf     *bufferedGroup
	pending *bufferedGroup
}

// NewStaggeredGroup builds the engine over a dedicated-parity layout.
func NewStaggeredGroup(cfg Config) (*StaggeredGroup, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Layout.Placement() != layout.DedicatedParity {
		return nil, fmt.Errorf("schemes: Staggered-group needs dedicated parity, got %v", cfg.Layout.Placement())
	}
	slots, err := cfg.slotsFor(1)
	if err != nil {
		return nil, err
	}
	return &StaggeredGroup{cfg: cfg, slotsPerDisk: slots, pool: newPool()}, nil
}

// Name implements Simulator.
func (e *StaggeredGroup) Name() string { return "Staggered-group" }

// Cycle implements Simulator.
func (e *StaggeredGroup) Cycle() int { return e.cycle }

// CycleTime implements Simulator: Tcyc = B/b0 (k' = 1).
func (e *StaggeredGroup) CycleTime() time.Duration {
	return e.cfg.Farm.Params().CycleTime(1, e.cfg.Rate)
}

// SlotsPerDisk returns the per-disk per-cycle track budget in use.
func (e *StaggeredGroup) SlotsPerDisk() int { return e.slotsPerDisk }

// Active implements Simulator.
func (e *StaggeredGroup) Active() int {
	n := 0
	for _, s := range e.streams {
		if !s.Done && !s.Terminated {
			n++
		}
	}
	return n
}

// BufferPeak implements Simulator.
func (e *StaggeredGroup) BufferPeak() int { return e.pool.Peak() }

// BufferInUse returns the current buffer occupancy in tracks.
func (e *StaggeredGroup) BufferInUse() int { return e.pool.InUse() }

// AddStream implements Simulator. The stream's read phase is the
// admission cycle mod C-1; only streams sharing a phase ever touch the
// same disks in the same cycle (different phases read in different
// cycles), and same-phase streams advance clusters in lockstep, so
// admission checks the count of same-phase streams currently on the new
// stream's start cluster.
func (e *StaggeredGroup) AddStream(obj *layout.Object) (int, error) {
	width := e.cfg.Layout.GroupWidth()
	phase := e.cycle % width
	start := obj.Groups[0].Cluster
	load := 0
	for _, s := range e.streams {
		if s.Done || s.Terminated || s.phase != phase || s.nextGroup >= len(s.Obj.Groups) {
			continue
		}
		if s.Obj.Groups[s.nextGroup].Cluster == start {
			load++
		}
	}
	if load >= e.slotsPerDisk {
		return 0, fmt.Errorf("schemes: phase %d of cluster %d is at its %d-stream capacity", phase, start, e.slotsPerDisk)
	}
	id := e.nextID
	e.nextID++
	e.streams = append(e.streams, &sgStream{Stream: sched.Stream{ID: id, Obj: obj}, phase: phase})
	return id, nil
}

// CancelStream stops serving a stream immediately and returns its
// buffers.
func (e *StaggeredGroup) CancelStream(id int) error {
	for _, s := range e.streams {
		if s.ID != id {
			continue
		}
		if s.Done || s.Terminated {
			return fmt.Errorf("schemes: stream %d is not active", id)
		}
		s.Done = true
		for _, bg := range []*bufferedGroup{s.buf, s.pending} {
			if bg != nil && bg.pooled > 0 {
				if err := e.pool.Release(bg.pooled); err != nil {
					return err
				}
				bg.pooled = 0
			}
		}
		s.buf, s.pending = nil, nil
		return nil
	}
	return fmt.Errorf("schemes: no stream %d", id)
}

// FailDisk implements Simulator.
func (e *StaggeredGroup) FailDisk(id int) error {
	drv, err := e.cfg.Farm.Drive(id)
	if err != nil {
		return err
	}
	return drv.Fail()
}

// Step implements Simulator.
func (e *StaggeredGroup) Step() (*sched.CycleReport, error) {
	rep := &sched.CycleReport{Cycle: e.cycle}
	slots, err := sched.NewSlots(e.cfg.Farm.Size(), e.slotsPerDisk)
	if err != nil {
		return nil, err
	}
	width := e.cfg.Layout.GroupWidth()

	// Read pass: streams at their phase read their next whole group.
	for _, s := range e.streams {
		if s.Done || s.Terminated || e.cycle%width != s.phase || s.nextGroup >= len(s.Obj.Groups) {
			continue
		}
		g := &s.Obj.Groups[s.nextGroup]
		s.nextGroup++
		staged := &bufferedGroup{group: g, data: make([][]byte, len(g.Data)), reconstructed: make([]bool, len(g.Data))}
		ok := true
		for _, loc := range g.Data {
			if !slots.Take(loc.Disk) {
				ok = false
			}
		}
		if !slots.Take(g.Parity.Disk) {
			ok = false
		}
		if ok {
			gr := readGroup(e.cfg.Farm, g, true)
			rep.DataReads += gr.dataReads
			rep.ParityReads += gr.parityReads
			if rec, recErr := gr.recoverGroup(); recErr == nil && rec >= 0 {
				staged.reconstructed[rec] = true
				rep.Reconstructions++
			}
			staged.data = gr.data
			// C-1 data buffers plus the parity buffer; parity is dropped
			// at the end of this read cycle (its only post-read use is
			// masking a failure during the read).
			staged.pooled = len(g.Data) + 1
			if err := e.pool.Acquire(staged.pooled); err != nil {
				return nil, err
			}
		}
		s.pending = staged
	}

	// Delivery pass: one track per active stream per cycle; releases
	// happen here so the read pass above records the within-cycle peak.
	for _, s := range e.streams {
		if s.Done || s.Terminated {
			continue
		}
		if s.buf != nil && s.buf.next < s.buf.group.ValidTracks {
			e.deliverOne(s, rep)
			if s.buf.pooled > 0 {
				if err := e.pool.Release(1); err != nil {
					return nil, err
				}
				s.buf.pooled--
			}
		}
		if s.buf != nil && s.buf.next >= s.buf.group.ValidTracks {
			// Fully drained (padding tracks, if any, are released too).
			if s.buf.pooled > 0 {
				if err := e.pool.Release(s.buf.pooled); err != nil {
					return nil, err
				}
			}
			s.buf = nil
		}
		if s.pending != nil {
			// Drop the pending group's parity buffer at end of its read
			// cycle, then promote it if the previous group has drained.
			if s.pending.pooled > 0 {
				if err := e.pool.Release(1); err != nil {
					return nil, err
				}
				s.pending.pooled--
			}
			if s.buf == nil {
				s.buf = s.pending
				s.pending = nil
			}
		}
		if s.Done {
			rep.Finished = append(rep.Finished, s.ID)
		}
	}

	rep.BufferInUse = e.pool.InUse()
	e.cycle++
	return rep, nil
}

// deliverOne sends the next track of the stream's buffered group.
func (e *StaggeredGroup) deliverOne(s *sgStream, rep *sched.CycleReport) {
	bg := s.buf
	width := len(bg.group.Data)
	base := bg.group.Index * width
	off := bg.next
	bg.next++
	if bg.data[off] == nil {
		rep.Hiccups = append(rep.Hiccups, sched.Hiccup{
			StreamID: s.ID, ObjectID: s.Obj.ID, Track: base + off,
			Reason: "parity group unrecoverable",
		})
	} else {
		rep.Delivered = append(rep.Delivered, sched.Delivery{
			StreamID: s.ID, ObjectID: s.Obj.ID, Track: base + off,
			Data: bg.data[off], Reconstructed: bg.reconstructed[off],
		})
	}
	s.Advance(1)
}
