package schemes

import (
	"fmt"
	"time"

	"ftmm/internal/layout"
	"ftmm/internal/sched"
)

// StaggeredGroup is the §2 memory-saving variant: the layout and the
// failure tolerance are exactly Streaming RAID's, but the cycle is the
// display time of a single track (B/b0) and a stream reads its whole next
// parity group only once every C-1 cycles, delivering one track per cycle
// in between. Streams are staggered across read phases, so their buffer
// sawtooths interleave (Figure 4) and the farm-wide peak is roughly half
// of Streaming RAID's.
type StaggeredGroup struct {
	engineCore
	streams []*sgStream
}

type sgStream struct {
	sched.Stream
	// phase selects the stream's read cycles: cycle ≡ phase (mod C-1).
	phase int
	// nextGroup is the next parity-group index to read.
	nextGroup int
	// buf is the group draining one track per cycle; pending is the group
	// read this cycle, installed once buf finishes draining.
	buf     *bufferedGroup
	pending *bufferedGroup
}

func (s *sgStream) stream() *sched.Stream { return &s.Stream }

// NewStaggeredGroup builds the engine over a dedicated-parity layout.
func NewStaggeredGroup(cfg Config) (*StaggeredGroup, error) {
	if cfg.Layout != nil && cfg.Layout.Placement() != layout.DedicatedParity {
		return nil, fmt.Errorf("schemes: Staggered-group needs dedicated parity, got %v", cfg.Layout.Placement())
	}
	core, err := newEngineCore(cfg, 1)
	if err != nil {
		return nil, err
	}
	return &StaggeredGroup{engineCore: core}, nil
}

// Name implements Simulator.
func (e *StaggeredGroup) Name() string { return "Staggered-group" }

// CycleTime implements Simulator: Tcyc = B/b0 (k' = 1).
func (e *StaggeredGroup) CycleTime() time.Duration {
	return e.cfg.Farm.Params().CycleTime(1, e.cfg.Rate)
}

// Active implements Simulator.
func (e *StaggeredGroup) Active() int { return activeCount(e.streams) }

// StreamProgress reports the next track owed to the stream and its
// object's total tracks; ok is false for unknown streams.
func (e *StaggeredGroup) StreamProgress(id int) (next, total int, ok bool) {
	return streamProgress(e.streams, id)
}

// AddStream implements Simulator. The stream's read phase is the
// admission cycle mod C-1; only streams sharing a phase ever touch the
// same disks in the same cycle (different phases read in different
// cycles), and same-phase streams advance clusters in lockstep, so
// admission checks the count of same-phase streams currently on the new
// stream's start cluster.
func (e *StaggeredGroup) AddStream(obj *layout.Object) (int, error) {
	return e.AddStreamAt(obj, 0)
}

// AddStreamAt admits a stream beginning at the given parity group — the
// session-resume seam. The stream joins the phase of its admission cycle
// like any newcomer; only its start cluster and delivery origin move.
func (e *StaggeredGroup) AddStreamAt(obj *layout.Object, startGroup int) (int, error) {
	if err := checkStartGroup(obj, startGroup); err != nil {
		return 0, err
	}
	width := e.cfg.Layout.GroupWidth()
	phase := e.cycle % width
	start := obj.Groups[startGroup].Cluster
	load := 0
	for _, s := range e.streams {
		if s.Done || s.Terminated || s.phase != phase || s.nextGroup >= len(s.Obj.Groups) {
			continue
		}
		if s.Obj.Groups[s.nextGroup].Cluster == start {
			load++
		}
	}
	if load >= e.slotsPerDisk {
		return 0, fmt.Errorf("schemes: phase %d of cluster %d is at its %d-stream capacity", phase, start, e.slotsPerDisk)
	}
	id := e.allocStreamID()
	e.streams = append(e.streams, &sgStream{
		Stream:    sched.Stream{ID: id, Obj: obj, NextDeliver: startGroup * width},
		phase:     phase,
		nextGroup: startGroup,
	})
	return id, nil
}

// CancelStream stops serving a stream immediately and returns its
// buffers.
func (e *StaggeredGroup) CancelStream(id int) error {
	s, err := findActive(e.streams, id)
	if err != nil {
		return err
	}
	s.Done = true
	// releaseGroups also recycles the groups' buffers to the arena.
	if err := e.releaseGroups(s.buf, s.pending); err != nil {
		return err
	}
	s.buf, s.pending = nil, nil
	return nil
}

// Step implements Simulator.
func (e *StaggeredGroup) Step() (*sched.CycleReport, error) {
	ctx, err := e.beginCycle()
	if err != nil {
		return nil, err
	}
	width := e.cfg.Layout.GroupWidth()

	// Read pass: streams at their phase read their next whole group. As
	// in Streaming RAID, each reading stream touches exactly one cluster
	// this cycle, so the pass fans out per cluster; the buffer pool only
	// grows here, keeping its peak worker-count-independent.
	readers := make([][]*sgStream, e.cfg.Layout.Clusters())
	for _, s := range e.streams {
		if s.Done || s.Terminated || e.cycle%width != s.phase || s.nextGroup >= len(s.Obj.Groups) {
			continue
		}
		cl := s.Obj.Groups[s.nextGroup].Cluster
		readers[cl] = append(readers[cl], s)
	}
	if err := e.runClusters(ctx, func(shard *sched.CycleContext, cl int) error {
		for _, s := range readers[cl] {
			g := &s.Obj.Groups[s.nextGroup]
			s.nextGroup++
			// No stage cache: SG streams drain a group over C-1 cycles via a
			// private cursor, so sharing the struct would tangle cursors.
			staged, err := e.stageGroup(shard, g, nil)
			if err != nil {
				return err
			}
			// The staged group holds C-1 data buffers plus the parity
			// buffer; parity is dropped at the end of this read cycle (its
			// only post-read use is masking a failure during the read).
			s.pending = staged
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Delivery pass: one track per active stream per cycle; releases
	// happen here so the read pass above records the within-cycle peak.
	for _, s := range e.streams {
		if s.Done || s.Terminated {
			continue
		}
		if s.buf != nil && s.buf.next < s.buf.group.ValidTracks {
			e.deliverOne(s, ctx.Rep)
			if s.buf.pooled > 0 {
				if err := e.pool.Release(1); err != nil {
					return nil, err
				}
				s.buf.pooled--
			}
		}
		if s.buf != nil && s.buf.next >= s.buf.group.ValidTracks {
			// Fully drained (padding tracks, if any, are released too).
			if s.buf.pooled > 0 {
				if err := e.pool.Release(s.buf.pooled); err != nil {
					return nil, err
				}
				s.buf.pooled = 0
			}
			e.recycleGroup(s.buf)
			s.buf = nil
		}
		if s.pending != nil {
			// Drop the pending group's parity buffer at end of its read
			// cycle, then promote it if the previous group has drained.
			if s.pending.pooled > 0 {
				if err := e.pool.Release(1); err != nil {
					return nil, err
				}
				s.pending.pooled--
			}
			if s.buf == nil {
				s.buf = s.pending
				s.pending = nil
			}
		}
		if s.Done {
			ctx.Rep.Finished = append(ctx.Rep.Finished, s.ID)
		}
	}

	return e.endCycle(ctx), nil
}

// deliverOne sends the next track of the stream's buffered group.
func (e *StaggeredGroup) deliverOne(s *sgStream, rep *sched.CycleReport) {
	bg := s.buf
	width := len(bg.group.Data)
	base := bg.group.Index * width
	off := bg.next
	bg.next++
	if bg.data[off] == nil {
		rep.Hiccups = append(rep.Hiccups, sched.Hiccup{
			StreamID: s.ID, ObjectID: s.Obj.ID, Track: base + off,
			Reason: "parity group unrecoverable",
		})
	} else {
		ref := e.shareDelivered(bg.data[off])
		rep.Delivered = append(rep.Delivered, sched.Delivery{
			StreamID: s.ID, ObjectID: s.Obj.ID, Track: base + off,
			Data: bg.data[off], Buf: ref, Reconstructed: bg.reconstructed[off],
		})
		// Ownership moved to the Ref (released at the next Step's
		// beginCycle); clear the slot so group recycling skips it.
		bg.data[off] = nil
	}
	s.Advance(1)
}
