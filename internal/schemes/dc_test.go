package schemes

import (
	"fmt"
	"strings"
	"testing"

	"ftmm/internal/disk"
	"ftmm/internal/diskmodel"
	"ftmm/internal/layout"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// newDeclusteredRig builds d drives in declustering groups of g with
// parity groups of c, placing nObjects objects of groupsEach parity
// groups each.
func newDeclusteredRig(t *testing.T, d, g, c, nObjects, groupsEach int) *rig {
	t.Helper()
	p := diskmodel.Table1()
	tracksNeeded := (nObjects*groupsEach*c)/d + 10
	p.Capacity = units.ByteSize(tracksNeeded+groupsEach*c) * p.TrackSize
	farm, err := disk.NewFarm(d, g, p)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := layout.ForFarmDeclustered(farm, c)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{farm: farm, lay: lay, content: map[string][]byte{}}
	trackSize := int(p.TrackSize)
	for i := 0; i < nObjects; i++ {
		id := fmt.Sprintf("obj%d", i)
		tracks := groupsEach * (c - 1)
		content := workload.SyntheticContent(id, tracks*trackSize)
		obj, err := lay.AddObject(id, tracks, i%lay.Clusters(), units.MPEG1)
		if err != nil {
			t.Fatal(err)
		}
		if err := layout.WriteObject(farm, obj, content); err != nil {
			t.Fatal(err)
		}
		r.content[id] = content
	}
	return r
}

func TestDeclusteredHappyPath(t *testing.T) {
	r := newDeclusteredRig(t, 9, 9, 3, 3, 6)
	e, err := NewDeclustered(r.config())
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 3)
	objs := make([]*layout.Object, 3)
	for i := range ids {
		objs[i] = r.object(t, i)
		if ids[i], err = e.AddStream(objs[i]); err != nil {
			t.Fatal(err)
		}
	}
	deliveries, hiccups, _ := runToCompletion(t, e, 50)
	if len(hiccups) != 0 {
		t.Fatalf("healthy farm hiccuped: %v", hiccups)
	}
	for i, id := range ids {
		verifyStream(t, r, objs[i], deliveries[id], nil)
	}
	if got := e.BufferInUse(); got != 0 {
		t.Errorf("buffers leaked: %d tracks in use after drain", got)
	}
}

func TestDeclusteredRejectsClusteredLayout(t *testing.T) {
	r := newRig(t, 10, 5, 1, 4, layout.DedicatedParity)
	if _, err := NewDeclustered(r.config()); err == nil {
		t.Fatal("want placement error for dedicated-parity layout")
	}
}

// A single drive failure anywhere in the declustering group is masked
// with zero hiccups: every parity group losing a track recovers it from
// its block's parity, exactly as Streaming RAID does within a cluster.
func TestDeclusteredSingleFailureMasked(t *testing.T) {
	r := newDeclusteredRig(t, 9, 9, 3, 2, 8)
	e, err := NewDeclustered(r.config())
	if err != nil {
		t.Fatal(err)
	}
	obj := r.object(t, 0)
	id, err := e.AddStream(obj)
	if err != nil {
		t.Fatal(err)
	}
	deliveries, hiccups, _ := stepN(t, e, 3)
	if err := e.FailDisk(4); err != nil {
		t.Fatal(err)
	}
	d2, h2, _ := runToCompletion(t, e, 50)
	deliveries = merge(deliveries, d2)
	hiccups = append(hiccups, h2...)
	if len(hiccups) != 0 {
		t.Fatalf("single failure not masked: %v", hiccups)
	}
	verifyStream(t, r, obj, deliveries[id], nil)
}

// Satellite: a second failure in the SAME declustering group but a
// block the stream never reads keeps the stream alive with zero
// hiccups. Drives 3 and 7 co-occur only in block {2,3,7} of the (9,3)
// Steiner design — the 9th block — so an object of 4 parity groups
// (blocks 0..3) only ever sees each failure alone, masked by parity.
func TestDeclusteredSecondFailureDifferentBlockMasked(t *testing.T) {
	r := newDeclusteredRig(t, 9, 9, 3, 1, 4)
	e, err := NewDeclustered(r.config())
	if err != nil {
		t.Fatal(err)
	}
	obj := r.object(t, 0)
	id, err := e.AddStream(obj)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.FailDisk(3); err != nil {
		t.Fatal(err)
	}
	if err := e.FailDisk(7); err != nil {
		t.Fatal(err)
	}
	deliveries, hiccups, _ := runToCompletion(t, e, 30)
	if len(hiccups) != 0 {
		t.Fatalf("different-block double failure not masked: %v", hiccups)
	}
	if e.Active() != 0 {
		t.Fatal("stream did not finish")
	}
	verifyStream(t, r, obj, deliveries[id], nil)
}

// Satellite: a double failure inside ONE block is catastrophic for the
// parity groups mapped to it — detected and reported as unrecoverable
// hiccups — while groups on other blocks keep delivering bit-exact.
// Drives 0 and 1 share block {0,1,2} (block 0 of the design), which is
// group 0 of the object; with parity rotated onto drive 0 there, the
// group loses parity and one data track at once.
func TestDeclusteredSameBlockDoubleFailureCatastrophic(t *testing.T) {
	r := newDeclusteredRig(t, 9, 9, 3, 1, 4)
	e, err := NewDeclustered(r.config())
	if err != nil {
		t.Fatal(err)
	}
	obj := r.object(t, 0)
	id, err := e.AddStream(obj)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	if err := e.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	deliveries, hiccups, _ := runToCompletion(t, e, 30)
	if len(hiccups) == 0 {
		t.Fatal("same-block double failure must surface as hiccups")
	}
	lost := map[int]bool{}
	for _, h := range hiccups {
		if !strings.Contains(h.Reason, "unrecoverable") {
			t.Errorf("hiccup reason %q does not mark the loss catastrophic", h.Reason)
		}
		if h.Track/2 != 0 {
			t.Errorf("track %d lost, but only group 0 maps to the dead block", h.Track)
		}
		lost[h.Track] = true
	}
	if e.Active() != 0 {
		t.Fatal("stream must survive the catastrophic group and finish the rest")
	}
	verifyStream(t, r, obj, deliveries[id], lost)
}

// Admission caps streams per declustering group at the per-disk slot
// budget (the conservative worst case where every stream's block shares
// a drive).
func TestDeclusteredAdmissionCap(t *testing.T) {
	r := newDeclusteredRig(t, 9, 9, 3, 1, 4)
	cfg := r.config()
	cfg.SlotsPerDisk = 2
	e, err := NewDeclustered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obj := r.object(t, 0)
	for i := 0; i < 2; i++ {
		if _, err := e.AddStream(obj); err != nil {
			t.Fatalf("admission %d: %v", i, err)
		}
	}
	if _, err := e.AddStream(obj); err == nil {
		t.Fatal("third stream must be rejected at SlotsPerDisk=2")
	}
}
