package schemes

import (
	"testing"

	"ftmm/internal/layout"
)

// CancelStream at the engine level: the stream stops consuming capacity
// immediately, its buffers return to the pool, and the remaining streams
// finish bit-exactly.
func TestCancelStreamAllEngines(t *testing.T) {
	type engineCase struct {
		name   string
		place  layout.Placement
		build  func(r *rig) (Simulator, error)
		cancel func(e Simulator, id int) error
		inUse  func(e Simulator) int
	}
	cases := []engineCase{
		{"SR", layout.DedicatedParity,
			func(r *rig) (Simulator, error) { return NewStreamingRAID(r.config()) },
			func(e Simulator, id int) error { return e.(*StreamingRAID).CancelStream(id) },
			func(e Simulator) int { return e.(*StreamingRAID).BufferInUse() }},
		{"SG", layout.DedicatedParity,
			func(r *rig) (Simulator, error) { return NewStaggeredGroup(r.config()) },
			func(e Simulator, id int) error { return e.(*StaggeredGroup).CancelStream(id) },
			func(e Simulator) int { return e.(*StaggeredGroup).BufferInUse() }},
		{"NC", layout.DedicatedParity,
			func(r *rig) (Simulator, error) { return NewNonClustered(r.config(), AlternateSwitchover, 2) },
			func(e Simulator, id int) error { return e.(*NonClustered).CancelStream(id) },
			func(e Simulator) int { return e.(*NonClustered).BufferInUse() }},
		{"IB", layout.IntermixedParity,
			func(r *rig) (Simulator, error) { return NewImprovedBandwidth(r.config(), 2) },
			func(e Simulator, id int) error { return e.(*ImprovedBandwidth).CancelStream(id) },
			func(e Simulator) int { return e.(*ImprovedBandwidth).BufferInUse() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, 10, 5, 2, 10, tc.place)
			e, err := tc.build(r)
			if err != nil {
				t.Fatal(err)
			}
			id0, err := e.AddStream(r.object(t, 0))
			if err != nil {
				t.Fatal(err)
			}
			stepN(t, e, 1)
			id1, err := e.AddStream(r.object(t, 1))
			if err != nil {
				t.Fatal(err)
			}
			early, _, _ := stepN(t, e, 3)
			if err := tc.cancel(e, id0); err != nil {
				t.Fatal(err)
			}
			if e.Active() != 1 {
				t.Fatalf("active = %d after cancel, want 1", e.Active())
			}
			// Cancelling again, or a bogus ID, fails.
			if err := tc.cancel(e, id0); err == nil {
				t.Fatal("double cancel accepted")
			}
			if err := tc.cancel(e, 999); err == nil {
				t.Fatal("bogus cancel accepted")
			}
			deliveries, hiccups, _ := runToCompletion(t, e, 200)
			if len(hiccups) != 0 {
				t.Fatalf("hiccups after cancel: %v", hiccups)
			}
			all := merge(early, deliveries)
			verifyStream(t, r, r.object(t, 1), all[id1], nil)
			if tc.inUse(e) != 0 {
				t.Fatalf("buffers leaked after cancel: %d", tc.inUse(e))
			}
			// The cancelled stream's slot is reusable.
			if _, err := e.AddStream(r.object(t, 0)); err != nil {
				t.Fatalf("slot not freed: %v", err)
			}
		})
	}
}
