package schemes

import (
	"fmt"
	"time"

	"ftmm/internal/disk"
	"ftmm/internal/layout"
	"ftmm/internal/parity"
	"ftmm/internal/sched"
)

// ImprovedBandwidth is the §4 engine. The layout intermixes the parity of
// cluster i on the drives of cluster i+1, so in normal operation no
// bandwidth is spent on parity: every drive delivers data, and only a
// configurable reserve of slots per drive is held back.
//
// When a drive fails, the groups that lose a track read their parity
// block from the next cluster. If the parity block's drive has no free
// slot, one of that drive's scheduled local reads is dropped in its
// favor; the dropped group is treated as a partial failure and performs
// the same shift on cluster i+2, and so on to the right until idle
// capacity is found (Figure 8). When the chain finds none, service
// degrades: the stream at the end of the chain is terminated.
//
// A failure in the middle of a cycle cannot be masked for the groups
// whose track was scheduled but not yet read on the failing drive —
// parity is not being read concurrently in normal mode — producing the
// paper's one-time isolated hiccups; from the next cycle on, the shift
// masks the failure completely.
type ImprovedBandwidth struct {
	engineCore
	reserve int
	streams []*groupStream
	// midFail, when >= 0, is a drive that fails midway through the next
	// cycle's reads.
	midFail int
	// terminations counts degradation-of-service stream kills.
	terminations int
}

// ibGroupRead is one group's in-flight read state during a cycle.
type ibGroupRead struct {
	s  *groupStream
	g  *layout.Group
	bg *bufferedGroup
	// missing lists in-group offsets that could not be read directly.
	missing []int
	// tookOn[disk] counts normal data-read slots this group holds on each
	// drive (victim bookkeeping for the shift).
	reads []ibRead
	// unmaskable marks missing offsets that may not be recovered this
	// cycle (mid-cycle failure: no time to fetch parity).
	unmaskable map[int]bool
}

type ibRead struct {
	offset int
	disk   int
}

// NewImprovedBandwidth builds the engine over an intermixed-parity
// layout, holding reserve slots per drive back from admission (the
// paper's K_IB disks' worth of reserved bandwidth, expressed per drive).
func NewImprovedBandwidth(cfg Config, reserve int) (*ImprovedBandwidth, error) {
	if cfg.Layout != nil && cfg.Layout.Placement() != layout.IntermixedParity {
		return nil, fmt.Errorf("schemes: Improved-bandwidth needs intermixed parity, got %v", cfg.Layout.Placement())
	}
	core, err := newEngineCore(cfg, cfg.Layout.GroupWidth())
	if err != nil {
		return nil, err
	}
	if reserve < 0 || reserve >= core.slotsPerDisk {
		return nil, fmt.Errorf("schemes: reserve %d must be in [0,%d)", reserve, core.slotsPerDisk)
	}
	return &ImprovedBandwidth{engineCore: core, reserve: reserve, midFail: -1}, nil
}

// Name implements Simulator.
func (e *ImprovedBandwidth) Name() string { return "Improved-bandwidth" }

// CycleTime implements Simulator: Tcyc = (C-1)·B/b0.
func (e *ImprovedBandwidth) CycleTime() time.Duration {
	return e.cfg.Farm.Params().CycleTime(e.cfg.Layout.GroupWidth(), e.cfg.Rate)
}

// Reserve returns the per-drive reserved slot count.
func (e *ImprovedBandwidth) Reserve() int { return e.reserve }

// Active implements Simulator.
func (e *ImprovedBandwidth) Active() int { return activeCount(e.streams) }

// StreamProgress reports the next track owed to the stream and its
// object's total tracks; ok is false for unknown streams.
func (e *ImprovedBandwidth) StreamProgress(id int) (next, total int, ok bool) {
	return streamProgress(e.streams, id)
}

// Terminations counts streams killed by degradation of service.
func (e *ImprovedBandwidth) Terminations() int { return e.terminations }

// AddStream implements Simulator. Admission caps each cluster at the
// per-drive budget minus the reserve, leaving the headroom the shift
// needs under failure.
func (e *ImprovedBandwidth) AddStream(obj *layout.Object) (int, error) {
	return e.AddStreamAt(obj, 0)
}

// AddStreamAt admits a stream beginning at the given parity group — the
// session-resume seam. The reserve-capped per-cluster check moves to the
// start group's cluster; everything else matches an aged stream.
func (e *ImprovedBandwidth) AddStreamAt(obj *layout.Object, startGroup int) (int, error) {
	if err := checkStartGroup(obj, startGroup); err != nil {
		return 0, err
	}
	start := obj.Groups[startGroup].Cluster
	cap := e.slotsPerDisk - e.reserve
	if e.groupClusterLoad(e.streams)[start] >= cap {
		return 0, fmt.Errorf("schemes: cluster %d is at its %d-stream capacity (reserve %d)", start, cap, e.reserve)
	}
	id := e.allocStreamID()
	e.streams = append(e.streams, &groupStream{
		Stream:    sched.Stream{ID: id, Obj: obj, NextDeliver: startGroup * e.cfg.Layout.GroupWidth()},
		nextGroup: startGroup,
	})
	return id, nil
}

// CancelStream stops serving a stream immediately and returns its
// buffers.
func (e *ImprovedBandwidth) CancelStream(id int) error {
	return e.cancelGroupStream(e.streams, id)
}

// FailDiskMidCycle schedules the drive to fail halfway through the next
// cycle's reads: tracks it had already read are fine, the rest hiccup
// once, and later cycles are masked.
func (e *ImprovedBandwidth) FailDiskMidCycle(id int) error {
	if _, err := e.cfg.Farm.Drive(id); err != nil {
		return err
	}
	e.midFail = id
	return nil
}

// readGroupBlocks runs one group's phase-1 data reads, recording into
// ctx (a per-cluster shard when the phase runs parallel).
func (e *ImprovedBandwidth) readGroupBlocks(gr *ibGroupRead, ctx *sched.CycleContext) error {
	for j, loc := range gr.g.Data {
		if !ctx.Slots.Take(loc.Disk) {
			gr.missing = append(gr.missing, j)
			continue
		}
		drv, err := e.cfg.Farm.Drive(loc.Disk)
		if err != nil {
			return err
		}
		blk, err := readTrackArena(drv, loc.Track, e.arena)
		if err != nil {
			gr.missing = append(gr.missing, j)
			continue
		}
		ctx.Rep.DataReads++
		gr.bg.data[j] = blk
		gr.reads = append(gr.reads, ibRead{offset: j, disk: loc.Disk})
	}
	return nil
}

// Step implements Simulator.
func (e *ImprovedBandwidth) Step() (*sched.CycleReport, error) {
	ctx, err := e.beginCycle()
	if err != nil {
		return nil, err
	}

	// Collect this cycle's group reads.
	var groups []*ibGroupRead
	for _, s := range e.streams {
		if s.Done || s.Terminated || s.nextGroup >= len(s.Obj.Groups) {
			continue
		}
		g := &s.Obj.Groups[s.nextGroup]
		s.nextGroup++
		groups = append(groups, &ibGroupRead{
			s: s, g: g,
			bg: &bufferedGroup{
				group:         g,
				data:          make([][]byte, len(g.Data)),
				reconstructed: make([]bool, len(g.Data)),
				shares:        1,
			},
			unmaskable: map[int]bool{},
		})
	}

	// Phase 1: normal data reads (no parity in normal mode). Each group's
	// reads stay on its own cluster, so the phase fans out per cluster —
	// except under a scheduled mid-cycle failure, whose semantics (the
	// victim drive serves exactly half of its scheduled reads, in
	// schedule order) depend on a serial read order.
	if e.midFail >= 0 {
		if err := e.stepMidFailReads(groups, ctx); err != nil {
			return nil, err
		}
	} else {
		byCluster := make([][]*ibGroupRead, e.cfg.Layout.Clusters())
		for _, gr := range groups {
			byCluster[gr.g.Cluster] = append(byCluster[gr.g.Cluster], gr)
		}
		if err := e.runClusters(ctx, func(shard *sched.CycleContext, cl int) error {
			for _, gr := range byCluster[cl] {
				if err := e.readGroupBlocks(gr, shard); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// Phase 2: shift to the right for groups missing blocks. The chain
	// crosses clusters (parity lives one cluster to the right, victims
	// cascade further), so it stays serial in group order.
	for _, gr := range groups {
		e.resolve(gr, groups, ctx, map[int]bool{})
	}

	// Buffer accounting for staged groups (terminated streams drop
	// theirs without ever acquiring; their buffers go back to the arena).
	for _, gr := range groups {
		if gr.s.Terminated {
			e.recycleGroup(gr.bg)
			continue
		}
		gr.bg.pooled = len(gr.g.Data)
		if err := e.pool.Acquire(gr.bg.pooled); err != nil {
			return nil, err
		}
		gr.s.staged = gr.bg
	}

	// Delivery of last cycle's groups.
	if err := e.deliverDouble(ctx, e.streams, "unmasked failure"); err != nil {
		return nil, err
	}

	return e.endCycle(ctx), nil
}

// stepMidFailReads is the serial phase-1 variant under a scheduled
// mid-cycle failure: the victim drive fails after serving half of its
// scheduled reads.
func (e *ImprovedBandwidth) stepMidFailReads(groups []*ibGroupRead, ctx *sched.CycleContext) error {
	midDisk := e.midFail
	scheduled := 0
	for _, gr := range groups {
		for _, loc := range gr.g.Data {
			if loc.Disk == midDisk {
				scheduled++
			}
		}
	}
	midAllowance := scheduled / 2
	for _, gr := range groups {
		for j, loc := range gr.g.Data {
			if !ctx.Slots.Take(loc.Disk) {
				gr.missing = append(gr.missing, j)
				continue
			}
			if loc.Disk == midDisk && e.midFail >= 0 {
				if midAllowance == 0 {
					drv, err := e.cfg.Farm.Drive(midDisk)
					if err != nil {
						return err
					}
					if err := drv.Fail(); err != nil {
						return err
					}
					e.midFail = -1
				} else {
					midAllowance--
				}
			}
			drv, err := e.cfg.Farm.Drive(loc.Disk)
			if err != nil {
				return err
			}
			blk, err := readTrackArena(drv, loc.Track, e.arena)
			if err != nil {
				gr.missing = append(gr.missing, j)
				if loc.Disk == midDisk {
					// Lost to the mid-cycle failure: no time to shift.
					gr.unmaskable[j] = true
				}
				continue
			}
			ctx.Rep.DataReads++
			gr.bg.data[j] = blk
			gr.reads = append(gr.reads, ibRead{offset: j, disk: loc.Disk})
		}
	}
	if e.midFail >= 0 {
		// The drive had no scheduled reads this cycle; fail it now.
		drv, err := e.cfg.Farm.Drive(e.midFail)
		if err != nil {
			return err
		}
		if err := drv.Fail(); err != nil {
			return err
		}
		e.midFail = -1
	}
	return nil
}

// resolve recovers a group's missing blocks via the parity shift. visited
// guards against wrapping all the way around the clusters.
func (e *ImprovedBandwidth) resolve(gr *ibGroupRead, groups []*ibGroupRead, ctx *sched.CycleContext, visited map[int]bool) {
	if len(gr.missing) == 0 {
		return
	}
	// Count the recoverable missing blocks.
	var recoverable []int
	for _, j := range gr.missing {
		if !gr.unmaskable[j] {
			recoverable = append(recoverable, j)
		}
	}
	gr.missing = nil
	if len(recoverable) == 0 {
		return // only mid-cycle losses: one-time hiccups
	}
	if len(recoverable) > 1 {
		// Two blocks gone from one group: catastrophic, nothing to do.
		return
	}
	j := recoverable[0]
	pCluster := e.cfg.Layout.ParityHomeCluster(gr.g.Cluster)
	if visited[pCluster] {
		// Wrapped around: no capacity anywhere. Degradation of service.
		e.terminate(gr.s, ctx.Rep)
		return
	}
	visited[pCluster] = true

	par := e.readParity(gr, groups, ctx, visited)
	if par == nil {
		return // terminate/hiccup already handled downstream
	}
	// Reconstruct in place: fold the surviving blocks into the parity
	// buffer, whose ownership then moves to the missing data slot.
	for k, blk := range gr.bg.data {
		if k == j || blk == nil {
			continue
		}
		if err := parity.XORInto(par, blk); err != nil {
			e.arena.Put(par)
			return
		}
	}
	gr.bg.data[j] = par
	gr.bg.reconstructed[j] = true
	ctx.Rep.Reconstructions++
}

// readParity secures a slot on the group's parity drive — dropping a
// local read in its favor if necessary — and reads the parity block. It
// returns nil after handling the failure modes (failed parity drive:
// catastrophic hiccup; no victim: degradation).
func (e *ImprovedBandwidth) readParity(gr *ibGroupRead, groups []*ibGroupRead, ctx *sched.CycleContext, visited map[int]bool) []byte {
	pDisk := gr.g.Parity.Disk
	drv, err := e.cfg.Farm.Drive(pDisk)
	if err != nil {
		return nil
	}
	if drv.State() != disk.Operational {
		// Adjacent-cluster double failure: the paper's data-loss case.
		return nil
	}
	if !ctx.Slots.Take(pDisk) {
		// Drop a victim's local read on this drive in favor of parity.
		victim := e.pickVictim(groups, pDisk, gr)
		if victim == nil {
			e.terminate(gr.s, ctx.Rep)
			return nil
		}
		// The victim loses the block it read from pDisk; the freed slot
		// carries our parity read. The victim's group then shifts right
		// itself.
		for vi, vr := range victim.reads {
			if vr.disk == pDisk {
				e.arena.Put(victim.bg.data[vr.offset])
				victim.bg.data[vr.offset] = nil
				victim.missing = append(victim.missing, vr.offset)
				victim.reads = append(victim.reads[:vi], victim.reads[vi+1:]...)
				break
			}
		}
		defer e.resolve(victim, groups, ctx, visited)
	}
	blk, err := readTrackArena(drv, gr.g.Parity.Track, e.arena)
	if err != nil {
		return nil
	}
	ctx.Rep.ParityReads++
	// The parity block occupies a buffer only within this cycle. The
	// caller owns the returned arena buffer (resolve transfers it into
	// the reconstructed slot).
	if err := e.pool.Acquire(1); err != nil {
		e.arena.Put(blk)
		return nil
	}
	if err := e.pool.Release(1); err != nil {
		e.arena.Put(blk)
		return nil
	}
	return blk
}

// pickVictim finds a group (other than the requester) holding a normal
// data-read slot on the drive.
func (e *ImprovedBandwidth) pickVictim(groups []*ibGroupRead, d int, requester *ibGroupRead) *ibGroupRead {
	for _, gr := range groups {
		if gr == requester || gr.s.Terminated {
			continue
		}
		for _, r := range gr.reads {
			if r.disk == d {
				return gr
			}
		}
	}
	return nil
}

// terminate kills a stream: the paper's degradation of service. Buffers
// the stream still holds from the previous cycle are returned.
func (e *ImprovedBandwidth) terminate(s *groupStream, rep *sched.CycleReport) {
	if s.Terminated {
		return
	}
	s.Terminated = true
	e.terminations++
	rep.Terminated = append(rep.Terminated, s.ID)
	for _, bg := range []*bufferedGroup{s.delivering, s.staged} {
		if bg != nil {
			if bg.pooled > 0 {
				_ = e.pool.Release(bg.pooled)
				bg.pooled = 0
			}
			e.recycleGroup(bg)
		}
	}
	s.delivering, s.staged = nil, nil
}
