package catalog

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"ftmm/internal/disk"
	"ftmm/internal/diskmodel"
	"ftmm/internal/layout"
	"ftmm/internal/tertiary"
	"ftmm/internal/units"
)

// testRig: 10 drives x 20 tracks in clusters of 5 => 200 tracks total;
// each 16-track object consumes 4 groups x 5 tracks = 20 tracks.
func testRig(t *testing.T, objects int) (*tertiary.Library, *disk.Farm, *Catalog) {
	t.Helper()
	p := diskmodel.Table1()
	p.Capacity = 20 * p.TrackSize
	lib, err := tertiary.NewLibrary(tertiary.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	trackSize := int(p.TrackSize)
	for i := 0; i < objects; i++ {
		content := bytes.Repeat([]byte{byte(i + 1)}, 16*trackSize)
		if err := lib.Store(fmt.Sprintf("obj%d", i), i/3, content); err != nil {
			t.Fatal(err)
		}
	}
	farm, err := disk.NewFarm(10, 5, p)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := New(lib, farm, layout.DedicatedParity)
	if err != nil {
		t.Fatal(err)
	}
	return lib, farm, cat
}

func TestEnsureStagesAndCaches(t *testing.T) {
	_, farm, cat := testRig(t, 3)
	obj, cost, err := cat.Ensure("obj0", units.MPEG1)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("first staging should cost tertiary time")
	}
	if !cat.Resident("obj0") {
		t.Fatal("not resident after Ensure")
	}
	// Content actually landed on disk.
	blk, err := layout.ReadDataTrack(farm, obj, 0)
	if err != nil {
		t.Fatal(err)
	}
	if blk[0] != 1 {
		t.Fatalf("staged content wrong: %x", blk[0])
	}
	// Second Ensure is free.
	obj2, cost2, err := cat.Ensure("obj0", units.MPEG1)
	if err != nil {
		t.Fatal(err)
	}
	if cost2 != 0 || obj2 != obj {
		t.Fatalf("re-ensure: cost=%v same=%v", cost2, obj2 == obj)
	}
	if s, e := cat.Stats(); s != 1 || e != 0 {
		t.Fatalf("stats = (%d,%d)", s, e)
	}
}

func TestEnsureMissingObject(t *testing.T) {
	_, _, cat := testRig(t, 1)
	if _, _, err := cat.Ensure("ghost", units.MPEG1); !errors.Is(err, tertiary.ErrNotFound) {
		t.Fatalf("missing object: %v", err)
	}
}

func TestLRUEviction(t *testing.T) {
	_, _, cat := testRig(t, 12)
	// Capacity is 200 tracks; each object takes 20. Stage 10 to fill.
	for i := 0; i < 10; i++ {
		if _, _, err := cat.Ensure(fmt.Sprintf("obj%d", i), units.MPEG1); err != nil {
			t.Fatalf("obj%d: %v", i, err)
		}
	}
	if cat.ResidentIDs() != 10 {
		t.Fatalf("resident = %d, want 10", cat.ResidentIDs())
	}
	// Touch obj0 so obj1 is the LRU.
	if _, _, err := cat.Ensure("obj0", units.MPEG1); err != nil {
		t.Fatal(err)
	}
	// Staging obj10 must evict obj1 (the LRU), not obj0.
	if _, _, err := cat.Ensure("obj10", units.MPEG1); err != nil {
		t.Fatal(err)
	}
	if !cat.Resident("obj0") {
		t.Fatal("recently used obj0 evicted")
	}
	if cat.Resident("obj1") {
		t.Fatal("LRU obj1 not evicted")
	}
	if _, e := cat.Stats(); e != 1 {
		t.Fatalf("evictions = %d, want 1", e)
	}
}

func TestPinPreventsEviction(t *testing.T) {
	_, _, cat := testRig(t, 12)
	for i := 0; i < 10; i++ {
		if _, _, err := cat.Ensure(fmt.Sprintf("obj%d", i), units.MPEG1); err != nil {
			t.Fatal(err)
		}
		if err := cat.Pin(fmt.Sprintf("obj%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Everything pinned: staging must fail with ErrNoSpace.
	if _, _, err := cat.Ensure("obj10", units.MPEG1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	// Unpin one; now it works and evicts exactly that object.
	if err := cat.Unpin("obj3"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cat.Ensure("obj10", units.MPEG1); err != nil {
		t.Fatal(err)
	}
	if cat.Resident("obj3") {
		t.Fatal("unpinned obj3 should have been the victim")
	}
}

func TestPinUnpinErrors(t *testing.T) {
	_, _, cat := testRig(t, 2)
	if err := cat.Pin("obj0"); !errors.Is(err, ErrNotResident) {
		t.Errorf("pin non-resident: %v", err)
	}
	if _, _, err := cat.Ensure("obj0", units.MPEG1); err != nil {
		t.Fatal(err)
	}
	if err := cat.Unpin("obj0"); err == nil {
		t.Error("unpin with zero pins accepted")
	}
	if err := cat.Pin("obj0"); err != nil {
		t.Fatal(err)
	}
	if n, _ := cat.Pins("obj0"); n != 1 {
		t.Fatalf("pins = %d", n)
	}
	if _, err := cat.Pins("ghost"); !errors.Is(err, ErrNotResident) {
		t.Errorf("pins of non-resident: %v", err)
	}
	if err := cat.Unpin("ghost"); !errors.Is(err, ErrNotResident) {
		t.Errorf("unpin non-resident: %v", err)
	}
}

func TestExplicitEvict(t *testing.T) {
	_, _, cat := testRig(t, 2)
	if _, _, err := cat.Ensure("obj0", units.MPEG1); err != nil {
		t.Fatal(err)
	}
	if err := cat.Pin("obj0"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Evict("obj0"); err == nil {
		t.Error("evicting pinned object accepted")
	}
	if err := cat.Unpin("obj0"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Evict("obj0"); err != nil {
		t.Fatal(err)
	}
	if cat.Resident("obj0") {
		t.Fatal("still resident after evict")
	}
	if err := cat.Evict("obj0"); !errors.Is(err, ErrNotResident) {
		t.Errorf("double evict: %v", err)
	}
}

func TestObjectAccessor(t *testing.T) {
	_, _, cat := testRig(t, 1)
	if _, err := cat.Object("obj0"); !errors.Is(err, ErrNotResident) {
		t.Errorf("Object on non-resident: %v", err)
	}
	want, _, err := cat.Ensure("obj0", units.MPEG1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cat.Object("obj0")
	if err != nil || got != want {
		t.Fatalf("Object = %v,%v", got, err)
	}
}

func TestStartClustersRotate(t *testing.T) {
	_, _, cat := testRig(t, 4)
	var clusters []int
	for i := 0; i < 4; i++ {
		obj, _, err := cat.Ensure(fmt.Sprintf("obj%d", i), units.MPEG1)
		if err != nil {
			t.Fatal(err)
		}
		clusters = append(clusters, obj.StartCluster)
	}
	// 2 clusters in the rig: starts must alternate 0,1,0,1.
	for i, c := range clusters {
		if c != i%2 {
			t.Fatalf("start clusters = %v, want alternating", clusters)
		}
	}
}

func TestNewValidation(t *testing.T) {
	lib, farm, _ := testRig(t, 0)
	if _, err := New(nil, farm, layout.DedicatedParity); err == nil {
		t.Error("nil library accepted")
	}
	if _, err := New(lib, nil, layout.DedicatedParity); err == nil {
		t.Error("nil farm accepted")
	}
}
