package catalog

import (
	"fmt"
	"math/rand"
	"testing"

	"ftmm/internal/units"
)

// Randomized churn: arbitrary interleavings of Ensure/Pin/Unpin/Evict
// must preserve the invariants — pinned objects are never evicted,
// residency matches the layout's contents, and the track accounting
// never leaks.
func TestCatalogChurn(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const titles = 14
			_, _, cat := testRig(t, titles)
			totalTracks := 10 * 20 // farm capacity in tracks

			pins := map[string]int{}
			for op := 0; op < 300; op++ {
				id := fmt.Sprintf("obj%d", rng.Intn(titles))
				switch rng.Intn(5) {
				case 0, 1: // Ensure (may evict LRU unpinned)
					_, _, err := cat.Ensure(id, units.MPEG1)
					if err != nil {
						// Only acceptable failure: everything pinned.
						pinnedTracks := 0
						for pid, n := range pins {
							if n > 0 && cat.Resident(pid) {
								pinnedTracks += 20
							}
						}
						if pinnedTracks+20 <= totalTracks {
							t.Fatalf("op %d: Ensure(%s) failed with space available: %v", op, id, err)
						}
					}
				case 2: // Pin
					if cat.Resident(id) {
						if err := cat.Pin(id); err != nil {
							t.Fatalf("op %d: pin: %v", op, err)
						}
						pins[id]++
					}
				case 3: // Unpin
					if pins[id] > 0 {
						if err := cat.Unpin(id); err != nil {
							t.Fatalf("op %d: unpin: %v", op, err)
						}
						pins[id]--
					}
				case 4: // Evict
					err := cat.Evict(id)
					switch {
					case !cat.Resident(id) && err == nil && pins[id] == 0:
						// evicted fine
					case pins[id] > 0 && err == nil:
						t.Fatalf("op %d: evicted pinned object %s", op, id)
					}
				}
				// Invariant: every pinned object is still resident.
				for pid, n := range pins {
					if n > 0 && !cat.Resident(pid) {
						t.Fatalf("op %d: pinned %s not resident", op, pid)
					}
				}
			}
			// Drain pins and evict everything: all tracks come back.
			for pid, n := range pins {
				for i := 0; i < n; i++ {
					if err := cat.Unpin(pid); err != nil {
						t.Fatal(err)
					}
				}
			}
			for i := 0; i < titles; i++ {
				id := fmt.Sprintf("obj%d", i)
				if cat.Resident(id) {
					if err := cat.Evict(id); err != nil {
						t.Fatal(err)
					}
				}
			}
			if got := cat.Layout().FreeTracks(); got != totalTracks {
				t.Fatalf("tracks leaked: %d free of %d", got, totalTracks)
			}
			if cat.ResidentIDs() != 0 {
				t.Fatal("residents remain after full eviction")
			}
		})
	}
}
