// Package catalog manages which objects are disk-resident: the paper's
// §1 storage hierarchy, where "the entire database permanently resides on
// tertiary storage, from which objects are retrieved and placed on disk
// drives for delivery on demand", and "if the secondary storage capacity
// is exhausted ... one or more disk-resident objects must be purged".
//
// Purging is least-recently-used among objects with no active streams
// (an object being delivered cannot be evicted). Staging an object
// reports the simulated tertiary retrieval time so experiments can charge
// for it.
package catalog

import (
	"errors"
	"fmt"
	"time"

	"ftmm/internal/disk"
	"ftmm/internal/layout"
	"ftmm/internal/tertiary"
	"ftmm/internal/units"
)

// ErrNoSpace is returned when an object cannot fit even after evicting
// everything evictable.
var ErrNoSpace = errors.New("catalog: insufficient disk space")

// ErrNotResident is returned for operations on objects not on disk.
var ErrNotResident = errors.New("catalog: object not resident")

type entry struct {
	obj      *layout.Object
	lastUsed int64
	pins     int
}

// Catalog tracks disk residency over one farm and layout.
type Catalog struct {
	lib  *tertiary.Library
	farm *disk.Farm
	lay  *layout.Layout

	resident    map[string]*entry
	clock       int64
	nextCluster int

	evictions int
	stagings  int
}

// New creates a catalog over the given library and farm using the given
// parity placement.
func New(lib *tertiary.Library, farm *disk.Farm, placement layout.Placement) (*Catalog, error) {
	if lib == nil || farm == nil {
		return nil, errors.New("catalog: nil library or farm")
	}
	lay, err := layout.ForFarm(farm, placement)
	if err != nil {
		return nil, err
	}
	return &Catalog{lib: lib, farm: farm, lay: lay, resident: make(map[string]*entry)}, nil
}

// NewDeclustered creates a catalog using declustered parity placement:
// parity groups of groupC drives mapped onto block-design subsets of the
// farm's clusters, which serve as G-drive declustering groups.
func NewDeclustered(lib *tertiary.Library, farm *disk.Farm, groupC int) (*Catalog, error) {
	if lib == nil || farm == nil {
		return nil, errors.New("catalog: nil library or farm")
	}
	lay, err := layout.ForFarmDeclustered(farm, groupC)
	if err != nil {
		return nil, err
	}
	return &Catalog{lib: lib, farm: farm, lay: lay, resident: make(map[string]*entry)}, nil
}

// Layout exposes the underlying layout (read-mostly, for schedulers).
func (c *Catalog) Layout() *layout.Layout { return c.lay }

// Resident reports whether the object is currently on disk.
func (c *Catalog) Resident(id string) bool {
	_, ok := c.resident[id]
	return ok
}

// Object returns the placed object if resident.
func (c *Catalog) Object(id string) (*layout.Object, error) {
	e, ok := c.resident[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotResident, id)
	}
	return e.obj, nil
}

// Stats reports lifetime staging and eviction counts.
func (c *Catalog) Stats() (stagings, evictions int) {
	return c.stagings, c.evictions
}

// tracksFor returns the data-track count an object of the given size
// occupies.
func (c *Catalog) tracksFor(size int) int {
	ts := int(c.farm.Params().TrackSize)
	return (size + ts - 1) / ts
}

// Ensure makes the object disk-resident, staging it from tertiary
// storage (and evicting LRU unpinned objects as needed). It returns the
// placed object and the simulated staging time (zero when already
// resident).
func (c *Catalog) Ensure(id string, rate units.Rate) (*layout.Object, time.Duration, error) {
	c.clock++
	if e, ok := c.resident[id]; ok {
		e.lastUsed = c.clock
		return e.obj, 0, nil
	}
	content, cost, err := c.lib.Fetch(id)
	if err != nil {
		return nil, 0, err
	}
	tracks := c.tracksFor(len(content))
	obj, err := c.place(id, tracks, rate)
	if err != nil {
		return nil, 0, err
	}
	if err := layout.WriteObject(c.farm, obj, content); err != nil {
		// Leave the layout consistent: undo the placement.
		_ = c.lay.RemoveObject(id)
		return nil, 0, err
	}
	c.resident[id] = &entry{obj: obj, lastUsed: c.clock}
	c.stagings++
	return obj, cost, nil
}

// place allocates layout space, evicting LRU unpinned objects until the
// object fits.
func (c *Catalog) place(id string, tracks int, rate units.Rate) (*layout.Object, error) {
	for {
		obj, err := c.lay.AddObject(id, tracks, c.nextCluster, rate)
		if err == nil {
			c.nextCluster = (c.nextCluster + 1) % c.lay.Clusters()
			return obj, nil
		}
		victim := c.lruVictim()
		if victim == "" {
			return nil, fmt.Errorf("%w: %q needs %d tracks and nothing is evictable", ErrNoSpace, id, tracks)
		}
		if err := c.evict(victim); err != nil {
			return nil, err
		}
	}
}

// lruVictim returns the least recently used unpinned resident object, or
// "" if none.
func (c *Catalog) lruVictim() string {
	var victim string
	var oldest int64
	for id, e := range c.resident {
		if e.pins > 0 {
			continue
		}
		if victim == "" || e.lastUsed < oldest {
			victim, oldest = id, e.lastUsed
		}
	}
	return victim
}

// evict removes one resident object and frees its tracks.
func (c *Catalog) evict(id string) error {
	e, ok := c.resident[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotResident, id)
	}
	if e.pins > 0 {
		return fmt.Errorf("catalog: %q has %d active streams", id, e.pins)
	}
	if err := c.lay.RemoveObject(id); err != nil {
		return err
	}
	delete(c.resident, id)
	c.evictions++
	return nil
}

// Evict explicitly purges an unpinned object from disk.
func (c *Catalog) Evict(id string) error { return c.evict(id) }

// Pin marks the object as having one more active stream; pinned objects
// cannot be evicted.
func (c *Catalog) Pin(id string) error {
	e, ok := c.resident[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotResident, id)
	}
	e.pins++
	c.clock++
	e.lastUsed = c.clock
	return nil
}

// Unpin releases one active-stream reference.
func (c *Catalog) Unpin(id string) error {
	e, ok := c.resident[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotResident, id)
	}
	if e.pins == 0 {
		return fmt.Errorf("catalog: %q is not pinned", id)
	}
	e.pins--
	return nil
}

// Pins returns the active-stream count for a resident object.
func (c *Catalog) Pins(id string) (int, error) {
	e, ok := c.resident[id]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotResident, id)
	}
	return e.pins, nil
}

// ResidentIDs returns the number of resident objects.
func (c *Catalog) ResidentIDs() int { return len(c.resident) }
