package buffer

import (
	"sync"
	"sync/atomic"
)

// Arena recycles track-sized byte buffers through a sync.Pool so the
// steady-state data path stops allocating one slice per track read. It
// is distinct from Pool: Pool is the paper's track-count *accounting*
// (capacity and peak, §5's buffer-space penalty), Arena is the Go-level
// byte-buffer recycler underneath it. The two compose — engines acquire
// accounting from a Pool and bytes from an Arena.
//
// Ownership rule: a buffer obtained from Get/GetZeroed is owned by the
// caller until it is passed to Put, after which it must not be touched.
// Put-then-read is the use-after-free of this design; the race detector
// will not catch it (the pool hands buffers out data-race-free), so the
// engines follow a strict acquire-at-read, release-at-delivery
// discipline documented in DESIGN.md.
type Arena struct {
	trackSize int
	pool      sync.Pool
	gets      atomic.Int64
	puts      atomic.Int64
	news      atomic.Int64
}

// NewArena creates an arena handing out buffers of exactly trackSize
// bytes. A nil *Arena is valid: Get allocates fresh and Put discards.
func NewArena(trackSize int) *Arena {
	a := &Arena{trackSize: trackSize}
	a.pool.New = func() any {
		a.news.Add(1)
		b := make([]byte, trackSize)
		return &b
	}
	return a
}

// TrackSize returns the buffer size this arena hands out.
func (a *Arena) TrackSize() int {
	if a == nil {
		return 0
	}
	return a.trackSize
}

// Get returns a track-sized buffer with undefined contents. Callers that
// fully overwrite the buffer (track reads, parity folds with an initial
// copy) should use Get; XOR accumulators need GetZeroed.
func (a *Arena) Get() []byte {
	if a == nil {
		return nil
	}
	a.gets.Add(1)
	return *a.pool.Get().(*[]byte)
}

// GetZeroed returns a track-sized buffer with every byte zero, for use
// as an XOR accumulator.
func (a *Arena) GetZeroed() []byte {
	buf := a.Get()
	clear(buf)
	return buf
}

// Put returns a buffer to the arena. nil buffers and buffers of the
// wrong size (e.g. slices that came from somewhere else) are ignored, so
// callers can Put unconditionally at their release points. After Put the
// caller must not touch the buffer again.
func (a *Arena) Put(buf []byte) {
	if a == nil || buf == nil || len(buf) != a.trackSize {
		return
	}
	a.puts.Add(1)
	a.pool.Put(&buf)
}

// Stats reports lifetime counters: buffers handed out, buffers returned,
// and fresh allocations made because the pool was empty. gets - news is
// the number of recycled hand-outs.
func (a *Arena) Stats() (gets, puts, news int64) {
	if a == nil {
		return 0, 0, 0
	}
	return a.gets.Load(), a.puts.Load(), a.news.Load()
}
