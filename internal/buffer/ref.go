package buffer

import (
	"sync"
	"sync/atomic"
)

// Ref is a refcounted handle on an arena buffer. It exists so one
// delivered track can be handed to N consumers (session writers, a
// trace recorder) without copying: the producer Shares the buffer once,
// each consumer Retains it, and the buffer returns to the arena when
// the last holder Releases. Ref headers themselves are pooled on the
// arena, so steady-state sharing allocates nothing.
//
// Ownership rule: Share transfers the buffer from plain Get/Put
// discipline into refcounted discipline — after Share the producer must
// not Put the raw slice, only Release the Ref. Bytes must not be read
// after the holder's own Release (another stream may be filling the
// recycled buffer by then).
type Ref struct {
	arena *Arena
	buf   []byte
	refs  atomic.Int32
}

// refHeaders pools Ref structs for arenas (including the nil arena) so
// Share is allocation-free in steady state.
var refHeaders = sync.Pool{New: func() any { return new(Ref) }}

// Share wraps buf in a Ref with an initial count of one, transferring
// ownership of the slice to the Ref. Works on a nil arena too (the
// final Release then simply drops the slice for the GC).
func (a *Arena) Share(buf []byte) *Ref {
	r := refHeaders.Get().(*Ref)
	r.arena = a
	r.buf = buf
	r.refs.Store(1)
	return r
}

// Bytes returns the shared buffer. Valid only while the caller holds an
// unreleased reference.
func (r *Ref) Bytes() []byte { return r.buf }

// Retain adds a reference. The caller must already hold one (retaining
// a Ref that may concurrently hit zero is a use-after-free).
func (r *Ref) Retain() {
	if r.refs.Add(1) <= 1 {
		panic("buffer: Retain on released Ref")
	}
}

// Release drops one reference. When the last one drops the buffer goes
// back to the arena and the header back to its pool; the Ref must not
// be touched afterwards.
func (r *Ref) Release() {
	n := r.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("buffer: Release on released Ref")
	}
	a, buf := r.arena, r.buf
	r.arena, r.buf = nil, nil
	a.Put(buf)
	refHeaders.Put(r)
}

// Outstanding is the number of buffers currently checked out of the
// arena (handed out and not yet returned). Leak tests assert it drops
// back to zero once every consumer has Released.
func (a *Arena) Outstanding() int64 {
	if a == nil {
		return 0
	}
	return a.gets.Load() - a.puts.Load()
}
