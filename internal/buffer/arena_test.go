package buffer

import (
	"sync"
	"testing"
)

func TestArenaGetPut(t *testing.T) {
	a := NewArena(128)
	if a.TrackSize() != 128 {
		t.Fatalf("TrackSize = %d, want 128", a.TrackSize())
	}
	b := a.Get()
	if len(b) != 128 {
		t.Fatalf("Get returned %d bytes, want 128", len(b))
	}
	for i := range b {
		b[i] = 0xAB
	}
	a.Put(b)
	z := a.GetZeroed()
	if len(z) != 128 {
		t.Fatalf("GetZeroed returned %d bytes, want 128", len(z))
	}
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZeroed byte %d = %#x, want 0", i, v)
		}
	}
	gets, puts, _ := a.Stats()
	if gets != 2 || puts != 1 {
		t.Fatalf("Stats = (%d gets, %d puts), want (2, 1)", gets, puts)
	}
}

func TestArenaRejectsWrongSize(t *testing.T) {
	a := NewArena(64)
	a.Put(nil)
	a.Put(make([]byte, 63))
	a.Put(make([]byte, 65))
	if _, puts, _ := a.Stats(); puts != 0 {
		t.Fatalf("puts = %d, want 0 (all rejected)", puts)
	}
}

func TestArenaNilSafe(t *testing.T) {
	var a *Arena
	if b := a.Get(); b != nil {
		t.Fatal("nil arena Get returned a buffer")
	}
	a.Put(make([]byte, 10))
	if a.TrackSize() != 0 {
		t.Fatal("nil arena TrackSize != 0")
	}
	if g, p, n := a.Stats(); g != 0 || p != 0 || n != 0 {
		t.Fatal("nil arena has stats")
	}
}

// TestArenaConcurrent hammers Get/Put from many goroutines; run with
// -race in CI to cover the pool paths.
func TestArenaConcurrent(t *testing.T) {
	a := NewArena(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := a.Get()
				for j := range b {
					b[j] = seed
				}
				for j := range b {
					if b[j] != seed {
						t.Errorf("buffer shared between goroutines")
						return
					}
				}
				a.Put(b)
			}
		}(byte(g))
	}
	wg.Wait()
}

// TestArenaSteadyStateAllocs checks that a Get/Put cycle in steady state
// costs at most the one small header allocation sync.Pool.Put makes for
// the *[]byte box — not a track-sized buffer.
func TestArenaSteadyStateAllocs(t *testing.T) {
	a := NewArena(50_000)
	a.Put(a.Get()) // warm the pool
	n := testing.AllocsPerRun(100, func() {
		a.Put(a.Get())
	})
	// Allow a little slack: a GC during the run may clear the pool and
	// force one fresh track allocation.
	if n > 1.5 {
		t.Errorf("steady-state Get/Put allocates %.1f per run, want ~1", n)
	}
}
