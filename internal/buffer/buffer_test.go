package buffer

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestPoolBasics(t *testing.T) {
	p, err := NewPool(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(7); err != nil {
		t.Fatal(err)
	}
	if p.InUse() != 7 || p.Available() != 3 || p.Capacity() != 10 {
		t.Fatalf("state = %d/%d/%d", p.InUse(), p.Available(), p.Capacity())
	}
	if err := p.Acquire(4); !errors.Is(err, ErrExhausted) {
		t.Fatalf("over-acquire: %v", err)
	}
	if err := p.Release(5); err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(4); err != nil {
		t.Fatal(err)
	}
	if p.Peak() != 7 {
		t.Fatalf("peak = %d, want 7", p.Peak())
	}
	p.ResetPeak()
	if p.Peak() != 6 {
		t.Fatalf("peak after reset = %d, want 6 (current)", p.Peak())
	}
}

func TestPoolErrors(t *testing.T) {
	if _, err := NewPool(-1); err == nil {
		t.Error("negative capacity accepted")
	}
	p, _ := NewPool(10)
	if err := p.Acquire(-1); err == nil {
		t.Error("negative acquire accepted")
	}
	if err := p.Release(-1); err == nil {
		t.Error("negative release accepted")
	}
	if err := p.Release(1); err == nil {
		t.Error("release below zero accepted")
	}
}

func TestUnboundedPool(t *testing.T) {
	p, _ := NewPool(0)
	if err := p.Acquire(1_000_000); err != nil {
		t.Fatal(err)
	}
	if p.Available() != -1 {
		t.Fatalf("unbounded Available = %d, want -1", p.Available())
	}
	if p.Peak() != 1_000_000 {
		t.Fatalf("peak = %d", p.Peak())
	}
}

func TestPoolConcurrent(t *testing.T) {
	p, _ := NewPool(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				_ = p.Acquire(2)
				_ = p.Release(1)
			}
		}()
	}
	wg.Wait()
	if p.InUse() != 8000 {
		t.Fatalf("InUse = %d, want 8000", p.InUse())
	}
}

// Property: peak is monotone non-decreasing and >= in-use at all times.
func TestPoolPeakProperty(t *testing.T) {
	f := func(ops []int8) bool {
		p, _ := NewPool(0)
		peakSeen := 0
		for _, op := range ops {
			n := int(op)
			if n >= 0 {
				_ = p.Acquire(n)
			} else {
				_ = p.Release(-n)
			}
			if p.InUse() > peakSeen {
				peakSeen = p.InUse()
			}
			if p.Peak() < p.InUse() {
				return false
			}
		}
		return p.Peak() == peakSeen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestServers(t *testing.T) {
	s, err := NewServers(2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 2 || s.Free() != 2 || s.InUse() != 0 {
		t.Fatal("fresh server pool state")
	}
	if err := s.Attach(4); err != nil {
		t.Fatal(err)
	}
	if err := s.Attach(4); err != nil {
		t.Fatalf("re-attach should be a no-op: %v", err)
	}
	if s.InUse() != 1 {
		t.Fatalf("InUse = %d after idempotent attach", s.InUse())
	}
	if err := s.Attach(9); err != nil {
		t.Fatal(err)
	}
	if err := s.Attach(1); !errors.Is(err, ErrExhausted) {
		t.Fatalf("third attach: %v", err)
	}
	got := s.Attached()
	if len(got) != 2 || got[0] != 4 || got[1] != 9 {
		t.Fatalf("Attached = %v", got)
	}
	if err := s.Detach(4); err != nil {
		t.Fatal(err)
	}
	if err := s.Detach(4); err == nil {
		t.Error("double detach accepted")
	}
	if err := s.Attach(1); err != nil {
		t.Fatalf("attach after detach: %v", err)
	}
}

func TestServersErrors(t *testing.T) {
	if _, err := NewServers(-1); err == nil {
		t.Error("negative K accepted")
	}
	s, _ := NewServers(0)
	if err := s.Attach(0); !errors.Is(err, ErrExhausted) {
		t.Errorf("attach with K=0: %v", err)
	}
}
