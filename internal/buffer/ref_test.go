package buffer

import "testing"

func TestRefLifecycle(t *testing.T) {
	a := NewArena(8)
	buf := a.Get()
	if got := a.Outstanding(); got != 1 {
		t.Fatalf("Outstanding after Get = %d, want 1", got)
	}

	ref := a.Share(buf)
	if &ref.Bytes()[0] != &buf[0] {
		t.Fatal("Share copied the buffer")
	}
	ref.Retain()
	ref.Release()
	if got := a.Outstanding(); got != 1 {
		t.Fatalf("Outstanding with one ref held = %d, want 1", got)
	}
	ref.Release()
	if got := a.Outstanding(); got != 0 {
		t.Fatalf("Outstanding after final Release = %d, want 0", got)
	}

	// The recycled buffer must be reachable again through the pool.
	buf2 := a.Get()
	a.Put(buf2)
	if gets, puts, _ := a.Stats(); gets != puts {
		t.Fatalf("gets %d != puts %d after balanced use", gets, puts)
	}
}

func TestRefNilArena(t *testing.T) {
	var a *Arena
	ref := a.Share(make([]byte, 4))
	ref.Retain()
	ref.Release()
	ref.Release() // must not panic; slice just drops to the GC
	if got := a.Outstanding(); got != 0 {
		t.Fatalf("nil arena Outstanding = %d", got)
	}
}

func TestRefOverRelease(t *testing.T) {
	a := NewArena(8)
	ref := a.Share(a.Get())
	ref.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Release past zero did not panic")
		}
	}()
	ref.Release()
}
