// Package buffer provides the main-memory accounting the paper's schemes
// are compared on: track-granularity buffer pools with peak tracking
// (buffer space is one of the three redundancy penalties of §5), and the
// Non-clustered scheme's shared buffer servers (§3) — "one or more extra
// processors containing a buffer pool to help handle clusters operating
// in degraded mode", shared by all clusters, sized for K simultaneous
// degraded clusters.
package buffer

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrExhausted is returned when a pool or server allocation cannot be
// satisfied; at the system level this is the paper's degradation of
// service.
var ErrExhausted = errors.New("buffer: exhausted")

// Pool is a track-granularity buffer pool. A capacity of 0 means
// unbounded (useful for measuring how much a workload would need).
type Pool struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	peak     int
}

// NewPool creates a pool with the given capacity in tracks; 0 means
// unbounded.
func NewPool(capacityTracks int) (*Pool, error) {
	if capacityTracks < 0 {
		return nil, fmt.Errorf("buffer: negative capacity %d", capacityTracks)
	}
	return &Pool{capacity: capacityTracks}, nil
}

// Acquire takes n tracks from the pool.
func (p *Pool) Acquire(n int) error {
	if n < 0 {
		return fmt.Errorf("buffer: negative acquire %d", n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.capacity > 0 && p.inUse+n > p.capacity {
		return fmt.Errorf("%w: need %d tracks, %d of %d in use", ErrExhausted, n, p.inUse, p.capacity)
	}
	p.inUse += n
	if p.inUse > p.peak {
		p.peak = p.inUse
	}
	return nil
}

// Release returns n tracks to the pool.
func (p *Pool) Release(n int) error {
	if n < 0 {
		return fmt.Errorf("buffer: negative release %d", n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n > p.inUse {
		return fmt.Errorf("buffer: releasing %d tracks with only %d in use", n, p.inUse)
	}
	p.inUse -= n
	return nil
}

// InUse returns the tracks currently held.
func (p *Pool) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inUse
}

// Peak returns the high-water mark of InUse since creation (or the last
// ResetPeak).
func (p *Pool) Peak() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// ResetPeak sets the high-water mark to the current usage.
func (p *Pool) ResetPeak() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.peak = p.inUse
}

// Capacity returns the pool capacity (0 = unbounded).
func (p *Pool) Capacity() int { return p.capacity }

// Available returns the free tracks, or -1 for an unbounded pool.
func (p *Pool) Available() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.capacity == 0 {
		return -1
	}
	return p.capacity - p.inUse
}

// Servers models the Non-clustered scheme's shared buffer-server pool: K
// servers, each able to carry exactly one cluster operating in degraded
// mode. When a cluster's disk fails it attaches to a server; the server
// performs the parity computation and holds the staggered-group-sized
// buffers for that cluster until the disk is rebuilt.
type Servers struct {
	mu       sync.Mutex
	k        int
	attached map[int]bool
}

// NewServers creates a pool of k buffer servers.
func NewServers(k int) (*Servers, error) {
	if k < 0 {
		return nil, fmt.Errorf("buffer: negative server count %d", k)
	}
	return &Servers{k: k, attached: make(map[int]bool)}, nil
}

// Attach reserves a buffer server for the given cluster. Attaching an
// already-attached cluster is a no-op. When all K servers are busy the
// attach fails with ErrExhausted — the paper's degradation of service for
// the Non-clustered scheme.
func (s *Servers) Attach(cluster int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attached[cluster] {
		return nil
	}
	if len(s.attached) >= s.k {
		return fmt.Errorf("%w: all %d buffer servers busy", ErrExhausted, s.k)
	}
	s.attached[cluster] = true
	return nil
}

// Detach releases the server held by the cluster (after its failed disk
// has been rebuilt).
func (s *Servers) Detach(cluster int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.attached[cluster] {
		return fmt.Errorf("buffer: cluster %d holds no server", cluster)
	}
	delete(s.attached, cluster)
	return nil
}

// InUse returns the number of busy servers.
func (s *Servers) InUse() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.attached)
}

// Free returns the number of idle servers.
func (s *Servers) Free() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.k - len(s.attached)
}

// Size returns K.
func (s *Servers) Size() int { return s.k }

// Attached lists the clusters currently holding servers, sorted.
func (s *Servers) Attached() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.attached))
	for c := range s.attached {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}
