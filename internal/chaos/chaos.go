// Package chaos is the repo's deterministic fault-injection harness: a
// seed-reproducible campaign engine that drives every scheme engine
// through randomized admission/failure/repair/rebuild/cancel schedules
// while pluggable invariant checkers audit each cycle, in the spirit of
// the paper's §3-§5 claims about behavior *under failure*:
//
//   - delivery continuity: SR/SG/IB mask single failures with zero
//     hiccups; Non-clustered loses at most one parity group's worth of
//     tracks per stream, inside a bounded transition window (Figures
//     6-7), unless the cluster runs unprotected (degradation of
//     service);
//   - parity-group consistency after every repair and online rebuild;
//   - buffer accounting: no leaked arena buffers or pool tracks once
//     the server drains;
//   - admission: live streams never exceed the analytic N_p bound
//     (equations (8)-(11));
//   - report retention: a Clone of a cycle report stays equal to the
//     live report, delivered bytes match the stored content, and
//     per-stream delivery advances one consecutive track at a time.
//
// Everything is reproducible from one int64 seed at any worker count.
// On violation the campaign shrinks the schedule with delta debugging
// to a 1-minimal reproducing trace and can export it as a scenario file
// that cmd/ftmmsim replays (`-scenario`); regression traces live under
// scenarios/.
package chaos

import (
	"errors"
	"fmt"

	"ftmm/internal/analytic"
	"ftmm/internal/scenario"
	"ftmm/internal/server"
)

// EventKind names a schedule event type.
type EventKind string

const (
	// EventAdmit requests a stream for Title; admission rejections are
	// tolerated (the analytic bound is the invariant, not acceptance).
	EventAdmit EventKind = "admit"
	// EventFail fails Drive at the cycle boundary.
	EventFail EventKind = "fail"
	// EventRepair replaces Drive and rebuilds it instantly from parity.
	EventRepair EventKind = "repair"
	// EventRebuild replaces Drive and starts the paper's online rebuild
	// with Budget spare track reads per cycle.
	EventRebuild EventKind = "rebuild"
	// EventCancel hangs up the stream of the Stream-th successful
	// admission (0-based).
	EventCancel EventKind = "cancel"
	// EventNodeKill (cluster runs only) kills node Node at the cycle
	// boundary: it stops stepping forever and its live sessions fail
	// over to surviving replica holders at the next group boundary.
	EventNodeKill EventKind = "node-kill"
	// EventNodeDrain (cluster runs only) drains node Node: it stops
	// taking admissions and failovers while its streams play out, and
	// must end empty (the leak checker still audits it).
	EventNodeDrain EventKind = "node-drain"
	// EventPause parks the stream of the Stream-th successful admission:
	// its engine stream is cancelled (the slot returns to the admission
	// pool) and its position held for a later vcr-resume.
	EventPause EventKind = "pause"
	// EventVcrResume re-admits a paused stream at the parity-group floor
	// of its held position. A rejection is tolerated — the stream simply
	// stays parked, like a viewer holding a Retry-After.
	EventVcrResume EventKind = "vcr-resume"
	// EventFF sets the stream's playback multiplier to Rate (k′-weighted
	// admission decides; a refusal is tolerated). Only engines with rate
	// support (sr, dc) apply it; elsewhere it is a no-op.
	EventFF EventKind = "ff"
	// EventRewind jumps the stream to absolute track Track (clamped to
	// the title), re-admitting at the enclosing group boundary; if the
	// farm refuses, the stream is left parked at the target.
	EventRewind EventKind = "rewind"
)

// Event is one scheduled action. Events are applied best-effort so that
// every subset of a schedule remains runnable — the shrinker removes
// events freely and a repair whose failure was removed simply becomes a
// no-op.
type Event struct {
	Cycle  int       `json:"cycle"`
	Kind   EventKind `json:"kind"`
	Title  string    `json:"title,omitempty"`
	Drive  int       `json:"drive,omitempty"`
	Budget int       `json:"budget,omitempty"`
	Stream int       `json:"stream,omitempty"`
	// Node is the target node of cluster runs: the killed/drained node
	// for node events, the shard whose drive a fail/repair/rebuild
	// hits. Single-node schedules leave it 0.
	Node int `json:"node,omitempty"`
	// Rate is the playback multiplier of ff events; Track the absolute
	// jump target of rewind events.
	Rate  int `json:"rate,omitempty"`
	Track int `json:"track,omitempty"`
}

// Schedule is one complete chaos run description: a farm shape, a
// catalog, and an event timeline. It is the unit the generator emits,
// the runner executes, and the shrinker minimizes.
type Schedule struct {
	// Scheme is a server.ParseScheme name: sr, sg, nc, nc-simple, ib,
	// dc.
	Scheme      string `json:"scheme"`
	Disks       int    `json:"disks"`
	ClusterSize int    `json:"cluster_size"`
	// DeclusterGroup is G, the declustering group size, for the dc
	// scheme (0 = 2·ClusterSize-1); ignored otherwise.
	DeclusterGroup int     `json:"decluster_group,omitempty"`
	K              int     `json:"k"`
	Titles         int     `json:"titles"`
	TitleGroups    int     `json:"title_groups"`
	MaxCycles      int     `json:"max_cycles"`
	Events         []Event `json:"events"`
	// Nodes > 1 spreads the run across a farm-per-node cluster
	// (RunCluster); 0 or 1 is the classic single-node run. Replicas and
	// PlacementSeed feed the rendezvous placement that decides which
	// nodes hold which titles.
	Nodes         int   `json:"nodes,omitempty"`
	Replicas      int   `json:"replicas,omitempty"`
	PlacementSeed int64 `json:"placement_seed,omitempty"`
}

// FarmUnit returns the drive-group size the farm is built from: the
// declustering group G for the dc scheme (defaulting to 2C-1), the
// cluster C otherwise. Disks must be a whole number of these units.
func (s *Schedule) FarmUnit() int {
	if scheme, _, err := server.ParseScheme(s.Scheme); err == nil && scheme == analytic.DeclusteredParity {
		if s.DeclusterGroup > 0 {
			return s.DeclusterGroup
		}
		return 2*s.ClusterSize - 1
	}
	return s.ClusterSize
}

// Validate checks the schedule's shape.
func (s *Schedule) Validate() error {
	if _, _, err := server.ParseScheme(s.Scheme); err != nil {
		return err
	}
	unit := s.FarmUnit()
	switch {
	case s.ClusterSize < 2 || unit < s.ClusterSize || s.Disks < unit || s.Disks%unit != 0:
		return fmt.Errorf("chaos: bad farm %dx%d (unit %d)", s.Disks, s.ClusterSize, unit)
	case s.Titles < 1 || s.TitleGroups < 1:
		return errors.New("chaos: need at least one title with one group")
	case s.MaxCycles < 1:
		return errors.New("chaos: MaxCycles must be positive")
	case s.K < 0:
		return errors.New("chaos: negative K")
	case s.Nodes < 0:
		return errors.New("chaos: negative node count")
	case s.Replicas < 0 || (s.Nodes > 1 && s.Replicas > s.Nodes):
		return fmt.Errorf("chaos: %d replicas do not fit %d nodes", s.Replicas, s.Nodes)
	}
	nodes := s.Nodes
	if nodes < 1 {
		nodes = 1
	}
	for _, ev := range s.Events {
		if ev.Cycle < 0 {
			return fmt.Errorf("chaos: event %+v before cycle 0", ev)
		}
		if ev.Node < 0 || ev.Node >= nodes {
			return fmt.Errorf("chaos: event %+v on node outside [0,%d)", ev, nodes)
		}
		switch ev.Kind {
		case EventAdmit:
			if ev.Title == "" {
				return fmt.Errorf("chaos: admit without title at cycle %d", ev.Cycle)
			}
		case EventFail, EventRepair:
			if ev.Drive < 0 || ev.Drive >= s.Disks {
				return fmt.Errorf("chaos: event %+v on drive outside [0,%d)", ev, s.Disks)
			}
		case EventRebuild:
			if ev.Drive < 0 || ev.Drive >= s.Disks {
				return fmt.Errorf("chaos: event %+v on drive outside [0,%d)", ev, s.Disks)
			}
			if ev.Budget < s.ClusterSize-1 {
				return fmt.Errorf("chaos: rebuild budget %d below C-1=%d", ev.Budget, s.ClusterSize-1)
			}
		case EventCancel, EventPause, EventVcrResume:
			if ev.Stream < 0 {
				return fmt.Errorf("chaos: %s of negative stream ordinal %d", ev.Kind, ev.Stream)
			}
		case EventFF:
			if ev.Stream < 0 {
				return fmt.Errorf("chaos: ff of negative stream ordinal %d", ev.Stream)
			}
			if ev.Rate < 1 {
				return fmt.Errorf("chaos: ff rate %d below 1 at cycle %d", ev.Rate, ev.Cycle)
			}
		case EventRewind:
			if ev.Stream < 0 {
				return fmt.Errorf("chaos: rewind of negative stream ordinal %d", ev.Stream)
			}
			if ev.Track < 0 {
				return fmt.Errorf("chaos: rewind to negative track %d at cycle %d", ev.Track, ev.Cycle)
			}
		case EventNodeKill, EventNodeDrain:
			if s.Nodes < 2 {
				return fmt.Errorf("chaos: %s event in a single-node schedule", ev.Kind)
			}
		default:
			return fmt.Errorf("chaos: unknown event kind %q", ev.Kind)
		}
	}
	return nil
}

// ToSpec converts the schedule into a replayable scenario.Spec: the
// exact form `ftmmsim -scenario` consumes and the regression corpus
// under scenarios/ is stored in. Fail events pair with the next repair
// or rebuild of the same drive; repairs whose failure is absent from
// the schedule are dropped (the runner treats them as no-ops anyway).
func (s *Schedule) ToSpec() *scenario.Spec {
	spec := &scenario.Spec{
		Scheme: s.Scheme, Disks: s.Disks, ClusterSize: s.ClusterSize,
		DeclusterGroup: s.DeclusterGroup,
		K:              s.K, Titles: s.Titles, TitleGroups: s.TitleGroups,
		MaxCycles: s.MaxCycles,
		Nodes:     s.Nodes, Replicas: s.Replicas, PlacementSeed: s.PlacementSeed,
	}
	for _, ev := range s.Events {
		switch ev.Kind {
		case EventAdmit:
			spec.Requests = append(spec.Requests, scenario.Request{Cycle: ev.Cycle, Title: ev.Title})
		case EventCancel:
			spec.Cancels = append(spec.Cancels, scenario.Cancel{Cycle: ev.Cycle, Stream: ev.Stream})
		case EventFail:
			spec.Failures = append(spec.Failures, scenario.Failure{Cycle: ev.Cycle, Drive: ev.Drive, Node: ev.Node})
		case EventNodeKill:
			spec.NodeEvents = append(spec.NodeEvents, scenario.NodeEvent{Cycle: ev.Cycle, Kind: "kill", Node: ev.Node})
		case EventNodeDrain:
			spec.NodeEvents = append(spec.NodeEvents, scenario.NodeEvent{Cycle: ev.Cycle, Kind: "drain", Node: ev.Node})
		case EventPause:
			spec.VcrEvents = append(spec.VcrEvents, scenario.VcrEvent{Cycle: ev.Cycle, Kind: "pause", Stream: ev.Stream})
		case EventVcrResume:
			spec.VcrEvents = append(spec.VcrEvents, scenario.VcrEvent{Cycle: ev.Cycle, Kind: "resume", Stream: ev.Stream})
		case EventFF:
			spec.VcrEvents = append(spec.VcrEvents, scenario.VcrEvent{Cycle: ev.Cycle, Kind: "ff", Stream: ev.Stream, Rate: ev.Rate})
		case EventRewind:
			spec.VcrEvents = append(spec.VcrEvents, scenario.VcrEvent{Cycle: ev.Cycle, Kind: "rewind", Stream: ev.Stream, Track: ev.Track})
		case EventRepair, EventRebuild:
			for i := len(spec.Failures) - 1; i >= 0; i-- {
				f := &spec.Failures[i]
				if f.Drive == ev.Drive && f.Node == ev.Node && f.RepairCycle == 0 && f.Cycle < ev.Cycle {
					f.RepairCycle = ev.Cycle
					if ev.Kind == EventRebuild {
						f.RebuildBudget = ev.Budget
					}
					break
				}
			}
		}
	}
	return spec
}

// FromSpec converts a scenario back into a chaos schedule, so shipped
// regression traces can be re-audited by the full checker set (the
// chaos tests walk scenarios/chaos-*.json through this).
func FromSpec(spec *scenario.Spec) *Schedule {
	s := &Schedule{
		Scheme: spec.Scheme, Disks: spec.Disks, ClusterSize: spec.ClusterSize,
		DeclusterGroup: spec.DeclusterGroup,
		K:              spec.K, Titles: spec.Titles, TitleGroups: spec.TitleGroups,
		MaxCycles: spec.MaxCycles,
		Nodes:     spec.Nodes, Replicas: spec.Replicas, PlacementSeed: spec.PlacementSeed,
	}
	if s.MaxCycles == 0 {
		s.MaxCycles = 10_000
	}
	for _, r := range spec.Requests {
		s.Events = append(s.Events, Event{Cycle: r.Cycle, Kind: EventAdmit, Title: r.Title})
	}
	for _, f := range spec.Failures {
		s.Events = append(s.Events, Event{Cycle: f.Cycle, Kind: EventFail, Drive: f.Drive, Node: f.Node})
		if f.RepairCycle > 0 && !f.Tertiary {
			kind, budget := EventRepair, 0
			if f.RebuildBudget > 0 {
				kind, budget = EventRebuild, f.RebuildBudget
			}
			s.Events = append(s.Events, Event{Cycle: f.RepairCycle, Kind: kind, Drive: f.Drive, Budget: budget, Node: f.Node})
		}
	}
	for _, ne := range spec.NodeEvents {
		kind := EventNodeKill
		if ne.Kind == "drain" {
			kind = EventNodeDrain
		}
		s.Events = append(s.Events, Event{Cycle: ne.Cycle, Kind: kind, Node: ne.Node})
	}
	for _, c := range spec.Cancels {
		s.Events = append(s.Events, Event{Cycle: c.Cycle, Kind: EventCancel, Stream: c.Stream})
	}
	for _, v := range spec.VcrEvents {
		kind := EventPause
		switch v.Kind {
		case "resume":
			kind = EventVcrResume
		case "ff":
			kind = EventFF
		case "rewind":
			kind = EventRewind
		}
		s.Events = append(s.Events, Event{Cycle: v.Cycle, Kind: kind, Stream: v.Stream, Rate: v.Rate, Track: v.Track})
	}
	return s
}
