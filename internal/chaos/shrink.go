package chaos

// Shrink minimizes a violating schedule with delta debugging (ddmin):
// it searches for a 1-minimal subset of the event list that still
// reproduces a violation from the same checker, then additionally trims
// MaxCycles to just past the violation. The predicate is a pure
// function of the schedule — runs are deterministic and events apply
// best-effort, so every subset is runnable — which makes the shrink
// itself deterministic.
//
// Matching on the checker name (rather than the exact detail string)
// keeps shrinking effective when removing events shifts cycle numbers
// or stream IDs inside the message while the underlying breach is the
// same.
func Shrink(sch Schedule, orig Violation, newCheckers func() []Checker, hooks Hooks) Schedule {
	reproduces := func(s Schedule) bool {
		res, err := Run(RunConfig{Schedule: s, Checkers: newCheckers(), Hooks: hooks})
		return err == nil && res.Violation != nil && res.Violation.Checker == orig.Checker
	}

	out := sch
	out.Events = ddmin(sch.Events, func(sub []Event) bool {
		s := sch
		s.Events = sub
		return reproduces(s)
	})

	// Trim the tail: re-run to find where the violation now fires and
	// cut MaxCycles just past it.
	if res, err := Run(RunConfig{Schedule: out, Checkers: newCheckers(), Hooks: hooks}); err == nil &&
		res.Violation != nil && res.Violation.Checker == orig.Checker {
		trimmed := out
		trimmed.MaxCycles = res.Violation.Cycle + 2
		if trimmed.MaxCycles < out.MaxCycles && reproduces(trimmed) {
			out = trimmed
		}
	}
	return out
}

// ddmin is the classic Zeller/Hildebrandt delta-debugging minimization
// over the event list. test must hold for the full list; the result is
// 1-minimal: removing any single remaining event breaks reproduction.
func ddmin(events []Event, test func([]Event) bool) []Event {
	if len(events) == 0 || test(nil) {
		return nil
	}
	if !test(events) {
		// The caller's violation does not reproduce even unshrunk (a
		// non-deterministic checker would cause this; ours are pure).
		// Return the original rather than minimize the wrong thing.
		return events
	}
	cur := append([]Event(nil), events...)
	n := 2
	for len(cur) >= 2 {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		// Try each chunk alone.
		for i := 0; i < len(cur); i += chunk {
			end := i + chunk
			if end > len(cur) {
				end = len(cur)
			}
			subset := append([]Event(nil), cur[i:end]...)
			if len(subset) < len(cur) && test(subset) {
				cur, n, reduced = subset, 2, true
				break
			}
		}
		if reduced {
			continue
		}
		// Try each chunk's complement.
		for i := 0; i < len(cur); i += chunk {
			end := i + chunk
			if end > len(cur) {
				end = len(cur)
			}
			comp := append([]Event(nil), cur[:i]...)
			comp = append(comp, cur[end:]...)
			if len(comp) < len(cur) && test(comp) {
				cur = comp
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		if n >= len(cur) {
			break
		}
		n *= 2
		if n > len(cur) {
			n = len(cur)
		}
	}
	return cur
}
