package chaos

import (
	"math/rand"
	"testing"

	"ftmm/internal/failure"
)

// killSchedule is the canonical cluster drill: streams on three nodes,
// one node killed mid-stream, one drained later.
func killSchedule(scheme string) Schedule {
	// For dc the whole 8-drive farm is one declustering group (the
	// complete (8,4) design); the other schemes split it into clusters.
	decluster := 0
	if scheme == "dc" {
		decluster = 8
	}
	return Schedule{
		Scheme: scheme, Disks: 8, ClusterSize: 4, K: 1,
		DeclusterGroup: decluster,
		Titles:         4, TitleGroups: 6, MaxCycles: 200,
		Nodes: 3, Replicas: 2, PlacementSeed: 7,
		Events: []Event{
			{Cycle: 0, Kind: EventAdmit, Title: "title0"},
			{Cycle: 0, Kind: EventAdmit, Title: "title1"},
			{Cycle: 1, Kind: EventAdmit, Title: "title2"},
			{Cycle: 1, Kind: EventAdmit, Title: "title3"},
			{Cycle: 2, Kind: EventAdmit, Title: "title0"},
			{Cycle: 3, Kind: EventNodeKill, Node: 0},
			{Cycle: 5, Kind: EventNodeDrain, Node: 1},
		},
	}
}

// TestClusterRunFailover: killing a node mid-stream moves its sessions
// to replica holders and every surviving session still gets the whole
// title, bit-exact, with zero checker violations.
func TestClusterRunFailover(t *testing.T) {
	for _, scheme := range SchemeNames() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			res, err := RunCluster(ClusterRunConfig{Schedule: killSchedule(scheme)})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Violation != nil {
				t.Fatalf("%s violation at cycle %d: %s", res.Violation.Checker, res.Violation.Cycle, res.Violation.Detail)
			}
			if !res.Drained {
				t.Fatal("cluster never drained inside MaxCycles")
			}
			admitted, resumed := len(res.Sessions), 0
			if admitted == 0 {
				t.Fatal("no sessions admitted")
			}
			for _, s := range res.Sessions {
				if s.Resumes > 0 {
					resumed++
					if len(s.Chain) < 2 {
						t.Errorf("session %d resumed %d times but its chain is %v", s.Ordinal, s.Resumes, s.Chain)
					}
				}
				if !s.Finished && !s.Lost && !s.Terminated && !s.Cancelled {
					t.Errorf("session %d (title %s) ended in limbo: %+v", s.Ordinal, s.Title, s)
				}
			}
			if resumed == 0 {
				t.Error("node kill produced no failovers — the kill hit an idle node; schedule is not exercising the path")
			}
		})
	}
}

// TestClusterRunDrain: a drained node plays out its streams (no
// failover, no losses) and ends empty — the per-node leak checker
// audits it because draining nodes do not skip End.
func TestClusterRunDrain(t *testing.T) {
	sch := killSchedule("sr")
	sch.Events = []Event{
		{Cycle: 0, Kind: EventAdmit, Title: "title0"},
		{Cycle: 0, Kind: EventAdmit, Title: "title1"},
		{Cycle: 1, Kind: EventAdmit, Title: "title2"},
		{Cycle: 2, Kind: EventNodeDrain, Node: 1},
	}
	res, err := RunCluster(ClusterRunConfig{Schedule: sch})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("%s violation at cycle %d: %s", res.Violation.Checker, res.Violation.Cycle, res.Violation.Detail)
	}
	for _, s := range res.Sessions {
		if s.Resumes != 0 || s.Lost {
			t.Errorf("drain must not disturb sessions, but session %d has resumes=%d lost=%v", s.Ordinal, s.Resumes, s.Lost)
		}
		if !s.Finished {
			t.Errorf("session %d did not finish under a drain", s.Ordinal)
		}
	}
}

// TestClusterCatchesBrokenFailover is the cluster harness's own
// acceptance test: a failover that restarts one group too far forward
// must be flagged by the cross-node continuity checker as a gap.
func TestClusterCatchesBrokenFailover(t *testing.T) {
	res, err := RunCluster(ClusterRunConfig{
		Schedule: killSchedule("sr"),
		Hooks:    Hooks{ResumeGroupOffset: 1},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Violation == nil {
		t.Fatal("a failover skipping one parity group went undetected")
	}
	if res.Violation.Checker != "cluster-continuity" {
		t.Fatalf("expected the cluster-continuity checker to fire, got %q: %s", res.Violation.Checker, res.Violation.Detail)
	}
}

// TestClusterCatchesInjectedRepairBug: the per-node checker set keeps
// its teeth inside a cluster run — a corrupted repair on one shard is
// caught by that node's parity checker.
func TestClusterCatchesInjectedRepairBug(t *testing.T) {
	sch := killSchedule("sr")
	sch.Events = []Event{
		{Cycle: 0, Kind: EventAdmit, Title: "title0"},
		{Cycle: 0, Kind: EventAdmit, Title: "title1"},
		{Cycle: 2, Kind: EventFail, Drive: 1, Node: 2},
		{Cycle: 4, Kind: EventRepair, Drive: 1, Node: 2},
	}
	res, err := RunCluster(ClusterRunConfig{
		Schedule: sch,
		Hooks:    Hooks{AfterRepair: corruptTrackOnDrive},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Violation == nil {
		t.Fatal("corrupted repair on a shard went undetected")
	}
	if res.Violation.Checker != "parity" {
		t.Fatalf("expected the parity checker, got %q: %s", res.Violation.Checker, res.Violation.Detail)
	}
}

// TestClusterCampaignClean: every scheme survives randomized cluster
// schedules — node kills and drains on top of drive faults — with all
// per-node invariants and cross-node continuity intact.
func TestClusterCampaignClean(t *testing.T) {
	res, err := Campaign(CampaignConfig{Seed: *seedFlag, Runs: 10, Nodes: 3})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("run %d (%s, seed %d): %s violation at cycle %d: %s\nshrunk trace (%d events): %s",
			v.Run, v.Scheme, v.Seed, v.Violation.Checker, v.Violation.Cycle, v.Violation.Detail,
			len(v.Shrunk.Events), marshal(t, v.Shrunk))
	}
}

// TestClusterCampaignReproducible pins cluster-campaign determinism:
// same seed, byte-identical result, violations included (the sabotaged
// failover guarantees there are some to compare).
func TestClusterCampaignReproducible(t *testing.T) {
	cfg := CampaignConfig{
		Seed: *seedFlag, Runs: 6, Nodes: 3,
		Hooks: Hooks{ResumeGroupOffset: 1},
	}
	a, err := Campaign(cfg)
	if err != nil {
		t.Fatalf("first campaign: %v", err)
	}
	b, err := Campaign(cfg)
	if err != nil {
		t.Fatalf("second campaign: %v", err)
	}
	if len(a.Violations) == 0 {
		t.Fatalf("sabotaged cluster campaign found no violations; seed %d generated no kills with live sessions — pick another seed", *seedFlag)
	}
	if ja, jb := marshal(t, a), marshal(t, b); string(ja) != string(jb) {
		t.Errorf("same seed, different results:\n%s\n%s", ja, jb)
	}
}

// TestClusterScheduleSpecRoundTrip: generated cluster schedules survive
// Schedule -> scenario.Spec -> Schedule with topology and node events
// intact (the cluster corpus is written through this path).
func TestClusterScheduleSpecRoundTrip(t *testing.T) {
	schemes := SchemeNames()
	for i := 0; i < 30; i++ {
		rng := rand.New(rand.NewSource(failure.TrialSeed(*seedFlag, i)))
		sch := GenerateCluster(rng, schemes[i%len(schemes)], 3)
		spec := sch.ToSpec()
		if err := spec.Validate(); err != nil {
			t.Fatalf("schedule %d: exported spec invalid: %v\n%s", i, err, marshal(t, sch))
		}
		back := FromSpec(spec)
		if err := back.Validate(); err != nil {
			t.Fatalf("schedule %d: round-tripped schedule invalid: %v", i, err)
		}
		if back.Nodes != sch.Nodes || back.Replicas != sch.Replicas || back.PlacementSeed != sch.PlacementSeed {
			t.Fatalf("schedule %d: topology lost in round-trip: %+v vs %+v", i, back, sch)
		}
		kills := func(s *Schedule) (n, d int) {
			for _, ev := range s.Events {
				switch ev.Kind {
				case EventNodeKill:
					n++
				case EventNodeDrain:
					d++
				}
			}
			return
		}
		k1, d1 := kills(&sch)
		k2, d2 := kills(back)
		if k1 != k2 || d1 != d2 {
			t.Fatalf("schedule %d: node events lost in round-trip (%d/%d kills, %d/%d drains)", i, k1, k2, d1, d2)
		}
	}
}
