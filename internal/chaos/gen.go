package chaos

import (
	"fmt"
	"math/rand"
)

// Generate draws one randomized schedule for the scheme from the rng.
// Schedules are interesting but never catastrophic by construction —
// the invariants under test are the paper's single-failure guarantees,
// and a two-disks-in-one-parity-group catastrophe would legitimately
// lose data:
//
//   - dedicated-parity schemes (sr, sg, nc*) draw each failure from a
//     distinct cluster, so no parity group ever misses two members;
//   - ib failures are serialized: a second failure is scheduled only
//     after the first was instantly repaired, because intermixed parity
//     makes a drive a member of groups on two adjacent clusters and any
//     two of 2-3 clusters are cyclically adjacent;
//   - dc failures are drawn from distinct G-drive declustering groups:
//     within one group a second failure could land in the first's
//     block (λ >= 1 guarantees the pair shares one), losing data;
//   - at most one online rebuild per schedule (the server runs one at a
//     time).
//
// Non-clustered schedules may exceed K concurrent data-disk failures on
// purpose: running out of buffer servers is the paper's degradation of
// service, and the continuity checker exempts unprotected clusters.
func Generate(rng *rand.Rand, scheme string) Schedule {
	const c = 4
	s := Schedule{
		Scheme:      scheme,
		ClusterSize: c,
		Disks:       []int{8, 12}[rng.Intn(2)],
		K:           1 + rng.Intn(2),
		Titles:      3 + rng.Intn(3),
		TitleGroups: 3 + rng.Intn(4),
	}
	isIB := scheme == "ib"
	if scheme == "dc" {
		// Parity groups of C=4 on the (13,4) difference-set design;
		// failures below are drawn from distinct 13-drive groups.
		s.DeclusterGroup = 13
		s.Disks = []int{13, 26}[rng.Intn(2)]
	}

	nAdmits := 2 + rng.Intn(5)
	for i := 0; i < nAdmits; i++ {
		s.Events = append(s.Events, Event{
			Cycle: rng.Intn(11),
			Kind:  EventAdmit,
			Title: fmt.Sprintf("title%d", rng.Intn(s.Titles)),
		})
	}

	unit := s.FarmUnit() // cluster, or declustering group under dc
	clusters := s.Disks / unit
	nFails := rng.Intn(3)
	usedClusters := make(map[int]bool)
	haveRebuild := false
	nextFailAfter := 0 // ib: earliest cycle the next failure may occur
	for i := 0; i < nFails; i++ {
		cl := rng.Intn(clusters)
		if usedClusters[cl] {
			continue // keep failures in distinct clusters; skip, don't redraw
		}
		usedClusters[cl] = true
		failCycle := 2 + rng.Intn(10)
		if isIB {
			if i > 0 && nextFailAfter == 0 {
				break // first failure wasn't instantly repaired: no second
			}
			if failCycle <= nextFailAfter {
				failCycle = nextFailAfter + 1 + rng.Intn(4)
			}
		}
		drive := cl*unit + rng.Intn(unit)
		s.Events = append(s.Events, Event{Cycle: failCycle, Kind: EventFail, Drive: drive})

		repairCycle := failCycle + 1 + rng.Intn(c+2)
		switch p := rng.Float64(); {
		case p < 0.60:
			s.Events = append(s.Events, Event{Cycle: repairCycle, Kind: EventRepair, Drive: drive})
			if isIB {
				nextFailAfter = repairCycle + 1
			}
		case p < 0.85 && !haveRebuild:
			budget := (c - 1) * (1 + rng.Intn(3))
			s.Events = append(s.Events, Event{Cycle: repairCycle, Kind: EventRebuild, Drive: drive, Budget: budget})
			haveRebuild = true
			if isIB {
				nextFailAfter = 0
			}
		default:
			// Never repaired: the scheme carries the failure to the end.
			if isIB {
				nextFailAfter = 0
			}
		}
	}

	nCancels := rng.Intn(3)
	for i := 0; i < nCancels; i++ {
		s.Events = append(s.Events, Event{
			Cycle:  3 + rng.Intn(15),
			Kind:   EventCancel,
			Stream: rng.Intn(nAdmits),
		})
	}

	// Interactive viewers: pauses paired with later resumes, ff at
	// modest rates, and rewinds anywhere in the title. All of it lands
	// on the same ordinal space the cancels address, and all of it is
	// applied best-effort, so colliding verbs stay runnable.
	titleTracks := s.TitleGroups * (c - 1)
	nVcr := rng.Intn(4)
	for i := 0; i < nVcr; i++ {
		ord := rng.Intn(nAdmits)
		base := 3 + rng.Intn(12)
		switch rng.Intn(3) {
		case 0:
			s.Events = append(s.Events,
				Event{Cycle: base, Kind: EventPause, Stream: ord},
				Event{Cycle: base + 1 + rng.Intn(5), Kind: EventVcrResume, Stream: ord})
		case 1:
			s.Events = append(s.Events, Event{Cycle: base, Kind: EventFF, Stream: ord, Rate: 2 + rng.Intn(2)})
		default:
			s.Events = append(s.Events, Event{Cycle: base, Kind: EventRewind, Stream: ord, Track: rng.Intn(titleTracks)})
		}
	}

	lastEvent := 0
	for _, ev := range s.Events {
		if ev.Cycle > lastEvent {
			lastEvent = ev.Cycle
		}
	}
	// Longest play-out: a title's tracks at one per cycle, plus the whole
	// catalog's tracks as rebuild slack, plus a full replay per rewind
	// (a rewound stream may walk the title again), plus margin.
	s.MaxCycles = lastEvent + titleTracks + s.Titles*s.TitleGroups + nVcr*titleTracks + 40
	return s
}

// SchemeNames lists every scheme name campaigns rotate through by
// default: the four paper schemes (with both Non-clustered transition
// policies) plus declustered parity.
func SchemeNames() []string {
	return []string{"sr", "sg", "nc", "nc-simple", "ib", "dc"}
}
