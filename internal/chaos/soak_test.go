package chaos

import (
	"os"
	"testing"
)

// TestCampaignSoak is the long-haul variant of the clean-campaign test:
// many seeds, many runs, shrinking disabled for speed. It costs minutes
// under the race detector, so it only runs when CHAOS_SOAK is set — the
// nightly CI job exports it; regular `go test ./...` skips.
func TestCampaignSoak(t *testing.T) {
	if os.Getenv("CHAOS_SOAK") == "" {
		t.Skip("set CHAOS_SOAK=1 to run the soak campaign")
	}
	if testing.Short() {
		t.Skip("soak campaign skipped in -short mode")
	}
	for seed := *seedFlag; seed < *seedFlag+10; seed++ {
		res, err := Campaign(CampaignConfig{Seed: seed, Runs: 40, NoShrink: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range res.Violations {
			t.Errorf("seed %d run %d (%s): %s violation at cycle %d: %s",
				seed, v.Run, v.Scheme, v.Violation.Checker, v.Violation.Cycle, v.Violation.Detail)
		}
	}
}
