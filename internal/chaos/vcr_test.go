package chaos

import (
	"testing"

	"ftmm/internal/sched"
)

// vcrCounter counts applied VCR events, so tests can assert the verbs
// actually took effect instead of being skipped by the best-effort
// contract.
type vcrCounter struct {
	pauses, resumes, ffs, rewinds int
}

func (v *vcrCounter) Name() string                                    { return "vcr-counter" }
func (v *vcrCounter) Begin(*RunContext) error                         { return nil }
func (v *vcrCounter) AfterStep(*RunContext, *sched.CycleReport) error { return nil }
func (v *vcrCounter) End(*RunContext) error                           { return nil }
func (v *vcrCounter) OnEvent(_ *RunContext, ev Event) error {
	switch ev.Kind {
	case EventPause:
		v.pauses++
	case EventVcrResume:
		v.resumes++
	case EventFF:
		v.ffs++
	case EventRewind:
		v.rewinds++
	}
	return nil
}

// vcrSchedule builds a deterministic single-node schedule that walks a
// stream through pause → resume → rewind while a second stream
// fast-forwards.
func vcrSchedule(scheme string) Schedule {
	s := Schedule{
		Scheme: scheme, ClusterSize: 4, Disks: 8, K: 1,
		Titles: 2, TitleGroups: 4, MaxCycles: 120,
		Events: []Event{
			{Cycle: 0, Kind: EventAdmit, Title: "title0"},
			{Cycle: 0, Kind: EventAdmit, Title: "title1"},
			{Cycle: 2, Kind: EventPause, Stream: 0},
			{Cycle: 3, Kind: EventFF, Stream: 1, Rate: 2},
			{Cycle: 5, Kind: EventVcrResume, Stream: 0},
			{Cycle: 8, Kind: EventRewind, Stream: 0, Track: 1},
		},
	}
	if scheme == "dc" {
		s.DeclusterGroup = 13
		s.Disks = 13
	}
	return s
}

// TestVcrScheduleAllSchemes runs the pause/ff/rewind drill under every
// scheme through the full checker set — including the k′-weighted
// admission checker and the per-stream retention (position) checker —
// and asserts the verbs applied. FF applies only on engines with rate
// support (sr, dc); elsewhere the refusal is the legitimate outcome.
func TestVcrScheduleAllSchemes(t *testing.T) {
	for _, scheme := range SchemeNames() {
		t.Run(scheme, func(t *testing.T) {
			counter := &vcrCounter{}
			res, err := Run(RunConfig{
				Schedule: vcrSchedule(scheme),
				Checkers: append(DefaultCheckers(), counter),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatalf("%s violation at cycle %d: %s",
					res.Violation.Checker, res.Violation.Cycle, res.Violation.Detail)
			}
			if counter.pauses != 1 || counter.resumes != 1 || counter.rewinds != 1 {
				t.Errorf("applied pauses/resumes/rewinds = %d/%d/%d, want 1/1/1",
					counter.pauses, counter.resumes, counter.rewinds)
			}
			wantFF := 0
			if scheme == "sr" || scheme == "dc" {
				wantFF = 1
			}
			if counter.ffs != wantFF {
				t.Errorf("applied ffs = %d, want %d", counter.ffs, wantFF)
			}
		})
	}
}

// TestVcrPauseDrainNoLeak parks a stream and never resumes it: the run
// must still drain (a parked viewer draws no bandwidth and holds no
// buffers), and the leak checker audits the empty arena and pool.
func TestVcrPauseDrainNoLeak(t *testing.T) {
	s := Schedule{
		Scheme: "sr", ClusterSize: 4, Disks: 8, K: 1,
		Titles: 2, TitleGroups: 4, MaxCycles: 120,
		Events: []Event{
			{Cycle: 0, Kind: EventAdmit, Title: "title0"},
			{Cycle: 1, Kind: EventAdmit, Title: "title1"},
			{Cycle: 3, Kind: EventPause, Stream: 0},
		},
	}
	res, err := Run(RunConfig{Schedule: s, Checkers: DefaultCheckers()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("%s violation at cycle %d: %s",
			res.Violation.Checker, res.Violation.Cycle, res.Violation.Detail)
	}
	if res.Cycles >= s.MaxCycles {
		t.Errorf("run did not drain with a parked stream outstanding (%d cycles)", res.Cycles)
	}
}

// clusterVcrSchedule is a deterministic 3-node schedule exercising the
// session ledger across pause/resume, a rewind, and a node kill.
func clusterVcrSchedule() Schedule {
	return Schedule{
		Scheme: "sr", ClusterSize: 4, Disks: 8, K: 1,
		Titles: 3, TitleGroups: 4, MaxCycles: 160,
		Nodes: 3, Replicas: 2, PlacementSeed: 7,
		Events: []Event{
			{Cycle: 0, Kind: EventAdmit, Title: "title0"},
			{Cycle: 0, Kind: EventAdmit, Title: "title1"},
			{Cycle: 1, Kind: EventAdmit, Title: "title2"},
			{Cycle: 2, Kind: EventPause, Stream: 0},
			{Cycle: 4, Kind: EventRewind, Stream: 1, Track: 1},
			{Cycle: 5, Kind: EventVcrResume, Stream: 0},
			{Cycle: 6, Kind: EventNodeKill, Node: 0},
		},
	}
}

// TestVcrClusterLedger runs the cluster VCR drill and audits the final
// ledger: the paused session resumed (Resumes counts both its VCR
// resume and any failover), the rewound session replayed, and every
// session ended finished or lost-with-justification.
func TestVcrClusterLedger(t *testing.T) {
	res, err := RunCluster(ClusterRunConfig{Schedule: clusterVcrSchedule()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("%s violation at cycle %d: %s",
			res.Violation.Checker, res.Violation.Cycle, res.Violation.Detail)
	}
	if !res.Drained {
		t.Fatal("cluster did not drain")
	}
	if len(res.Sessions) != 3 {
		t.Fatalf("ledger has %d sessions, want 3", len(res.Sessions))
	}
	if got := res.Sessions[0].Resumes; got < 1 {
		t.Errorf("paused session resumed %d times, want >= 1", got)
	}
	if got := res.Sessions[1].Resumes; got < 1 {
		t.Errorf("rewound session re-admitted %d times, want >= 1", got)
	}
	for i, ses := range res.Sessions {
		if !ses.Finished && !ses.Lost {
			t.Errorf("session %d neither finished nor lost: %+v", i, ses)
		}
	}
}

// TestVcrClusterCheckerCatchesBrokenResume proves the cross-node
// continuity checker audits VCR re-admissions with its own ledger: a
// handoff deliberately shifted one group forward must be flagged as a
// position jump.
func TestVcrClusterCheckerCatchesBrokenResume(t *testing.T) {
	s := Schedule{
		Scheme: "sr", ClusterSize: 4, Disks: 8, K: 1,
		Titles: 2, TitleGroups: 6, MaxCycles: 160,
		Nodes: 3, Replicas: 2, PlacementSeed: 7,
		Events: []Event{
			{Cycle: 0, Kind: EventAdmit, Title: "title0"},
			{Cycle: 3, Kind: EventPause, Stream: 0},
			{Cycle: 5, Kind: EventVcrResume, Stream: 0},
		},
	}
	res, err := RunCluster(ClusterRunConfig{
		Schedule: s,
		Hooks:    Hooks{ResumeGroupOffset: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || res.Violation.Checker != "cluster-continuity" {
		t.Fatalf("shifted VCR resume not caught; violation = %+v", res.Violation)
	}
}
