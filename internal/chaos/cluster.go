package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"ftmm/internal/cluster"
	"ftmm/internal/sched"
	"ftmm/internal/server"
	"ftmm/internal/trace"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// NodeState is a cluster node's lifecycle state during a run.
type NodeState int

const (
	// NodeActive nodes take admissions and failovers.
	NodeActive NodeState = iota
	// NodeDraining nodes play out their streams but take no placements;
	// they must end empty and still face the End checkers.
	NodeDraining
	// NodeDead nodes never step again and skip the End checkers — the
	// disposable-node principle: their loss is paid in sessions, never
	// in cluster invariants.
	NodeDead
)

// NodeRun is one node of a cluster run: a complete single-node server
// holding its placement slice of the catalog, with its own checker set
// and run context (per-node invariants are per-node facts).
type NodeRun struct {
	Index    int
	ID       string
	State    NodeState
	Srv      *server.Server
	RC       *RunContext
	Checkers []Checker
}

// Session is one logical viewer across the cluster: admitted on one
// node, possibly resumed on others as nodes die. The ordinal space that
// cancel events address is cluster-wide admission order.
type Session struct {
	Ordinal int
	Title   string
	// Node and SID locate the live engine stream; Node is -1 once the
	// session left the system (finished, cancelled, lost, terminated).
	Node int
	SID  int
	// Next is the next new track the viewer is owed. Tracks in
	// [ResumeFloor, Next) may legitimately arrive a second time after a
	// failover — the bounded rewind to the group boundary.
	Next        int
	ResumeFloor int
	// Chain lists the node indexes that served the session, in
	// ownership order.
	Chain                           []int
	Resumes                         int
	Finished, Cancelled, Terminated bool
	// Paused marks a session a pause (or a refused rewind) parked: it
	// holds no engine stream and draws no bandwidth; PausedNext is the
	// track it is owed when a vcr-resume re-admits it.
	Paused     bool
	PausedNext int
	// Lost marks a failover that found no surviving holder with
	// capacity: the admitted loss of an unreplicated (or overloaded)
	// title. LostReason records the justification.
	Lost       bool
	LostReason string
}

// ClusterRunContext is what cluster-level checkers see: every node,
// the session ledger, and the shared catalog.
type ClusterRunContext struct {
	Schedule  *Schedule
	Placement *cluster.Placement
	Nodes     []*NodeRun
	Sessions  []*Session
	Content   map[string][]byte
	TrackSize int
	// Width is tracks per parity group (C-1); Total is tracks per title.
	Width, Total int
	Cycle        int
	// Drained reports whether the run reached the all-idle exit (false
	// until then, and forever if MaxCycles truncated the run).
	Drained bool
	// byStream locates a session from its live (node index, engine
	// stream ID) pair.
	byStream map[[2]int]*Session
}

// SessionOf returns the session currently served by the given node's
// engine stream, or nil.
func (crc *ClusterRunContext) SessionOf(node, sid int) *Session {
	return crc.byStream[[2]int{node, sid}]
}

// ClusterChecker audits a cluster-wide invariant. AfterStep sees every
// node's report for the cycle, indexed by node (nil for dead nodes,
// which no longer step).
type ClusterChecker interface {
	Name() string
	Begin(crc *ClusterRunContext) error
	AfterStep(crc *ClusterRunContext, reps []*sched.CycleReport) error
	End(crc *ClusterRunContext) error
}

// ClusterEventObserver is implemented by cluster checkers that need to
// see schedule events as they are applied — the cluster-level analogue
// of EventObserver, with the same only-applied-events contract.
type ClusterEventObserver interface {
	OnEvent(crc *ClusterRunContext, ev Event) error
}

// DefaultClusterCheckers returns a fresh instance of every standard
// cluster-level checker (layered on top of the per-node set).
func DefaultClusterCheckers() []ClusterChecker {
	return []ClusterChecker{NewCrossNodeContinuityChecker()}
}

// ClusterRunConfig configures one cluster schedule execution.
type ClusterRunConfig struct {
	Schedule Schedule
	// NewCheckers builds the per-node checker set (one per node);
	// default DefaultCheckers.
	NewCheckers func() []Checker
	// ClusterCheckers audit cross-node invariants; default
	// DefaultClusterCheckers().
	ClusterCheckers []ClusterChecker
	Hooks           Hooks
}

// ClusterRunResult summarizes one executed cluster schedule.
type ClusterRunResult struct {
	RunResult
	// Sessions is the final ledger: every admission's full history.
	Sessions []*Session
	// Drained reports whether every surviving node went idle before
	// MaxCycles.
	Drained bool
}

// clusterRun carries the runner's working state.
type clusterRun struct {
	sch   *Schedule
	cfg   *ClusterRunConfig
	crc   *ClusterRunContext
	hooks Hooks
}

// RunCluster executes one cluster schedule: Nodes farm-per-node shards
// sharing a rendezvous-placed catalog, stepped in lockstep, with
// node-kill failover (sessions resume on replica holders at the next
// group boundary) and node-drain reconfiguration, under the per-node
// checker set on every node plus the cluster checkers across them.
// Everything is deterministic: node order, routing, and failover depend
// only on the schedule.
func RunCluster(cfg ClusterRunConfig) (*ClusterRunResult, error) {
	sch := &cfg.Schedule
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	if sch.Nodes < 2 {
		return nil, errors.New("chaos: cluster run needs nodes >= 2")
	}
	if cfg.NewCheckers == nil {
		cfg.NewCheckers = DefaultCheckers
	}
	if cfg.ClusterCheckers == nil {
		cfg.ClusterCheckers = DefaultClusterCheckers()
	}
	scheme, policy, err := server.ParseScheme(sch.Scheme)
	if err != nil {
		return nil, err
	}

	params := sch.ToSpec().DiskParams()
	trackSize := int(params.TrackSize)
	width := sch.ClusterSize - 1
	titles := make([]string, sch.Titles)
	content := make(map[string][]byte, sch.Titles)
	for i := range titles {
		id := fmt.Sprintf("title%d", i)
		titles[i] = id
		content[id] = workload.SyntheticContent(id, sch.TitleGroups*width*trackSize)
	}
	replicas := sch.Replicas
	if replicas < 1 {
		replicas = 2
	}
	if replicas > sch.Nodes {
		replicas = sch.Nodes
	}
	nodeIDs := make([]string, sch.Nodes)
	for i := range nodeIDs {
		nodeIDs[i] = fmt.Sprintf("node%d", i)
	}
	pl := cluster.Assign(titles, nodeIDs, cluster.PlacementConfig{
		Seed: sch.PlacementSeed, Replicas: replicas,
	})

	crc := &ClusterRunContext{
		Schedule: sch, Placement: pl,
		Content: content, TrackSize: trackSize,
		Width: width, Total: sch.TitleGroups * width,
		byStream: make(map[[2]int]*Session),
	}
	for i, nodeID := range nodeIDs {
		srv, err := server.New(server.Options{
			Disks: sch.Disks, ClusterSize: sch.ClusterSize,
			DeclusterGroup: sch.DeclusterGroup,
			Scheme:         scheme, NCPolicy: policy, K: sch.K,
			DiskParams: params,
			Workers:    1, // determinism within the lockstep loop
		})
		if err != nil {
			return nil, err
		}
		for rank, title := range titles {
			if !holds(pl, title, nodeID) {
				continue
			}
			c := content[title]
			if err := srv.AddTitle(title, units.ByteSize(len(c)), rank/4, c); err != nil {
				return nil, err
			}
		}
		crc.Nodes = append(crc.Nodes, &NodeRun{
			Index: i, ID: nodeID, Srv: srv,
			RC: &RunContext{
				Srv: srv, Schedule: sch, Content: content, TrackSize: trackSize,
				TitleOf: make(map[int]string), ResumeStart: make(map[int]int),
			},
			Checkers: cfg.NewCheckers(),
		})
	}

	r := &clusterRun{sch: sch, cfg: &cfg, crc: crc, hooks: cfg.Hooks}
	res := &ClusterRunResult{}
	res.Sessions = crc.Sessions // replaced as the ledger grows
	violate := func(name, prefix string, err error) *ClusterRunResult {
		detail := err.Error()
		if prefix != "" {
			detail = prefix + ": " + detail
		}
		res.Violation = &Violation{Checker: name, Cycle: crc.Cycle, Detail: detail}
		res.Sessions = crc.Sessions
		return res
	}

	for _, nd := range crc.Nodes {
		for _, c := range nd.Checkers {
			if err := c.Begin(nd.RC); err != nil {
				return violate(c.Name(), nd.ID, err), nil
			}
		}
	}
	for _, c := range cfg.ClusterCheckers {
		if err := c.Begin(crc); err != nil {
			return violate(c.Name(), "", err), nil
		}
	}

	events := append([]Event(nil), sch.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Cycle < events[j].Cycle })
	lastEvent := 0
	for _, ev := range events {
		if ev.Cycle > lastEvent {
			lastEvent = ev.Cycle
		}
	}

	next := 0
	reps := make([]*sched.CycleReport, len(crc.Nodes))
	for cycle := 0; cycle < sch.MaxCycles; cycle++ {
		crc.Cycle = cycle
		for _, nd := range crc.Nodes {
			nd.RC.Cycle = cycle
		}
		for next < len(events) && events[next].Cycle == cycle {
			applied, target, err := r.apply(events[next])
			if err != nil {
				return violate("run-error", "", err), nil
			}
			if applied && target != nil {
				for _, c := range target.Checkers {
					if obs, ok := c.(EventObserver); ok {
						if err := obs.OnEvent(target.RC, events[next]); err != nil {
							return violate(c.Name(), target.ID, err), nil
						}
					}
				}
			}
			if applied {
				for _, c := range cfg.ClusterCheckers {
					if obs, ok := c.(ClusterEventObserver); ok {
						if err := obs.OnEvent(crc, events[next]); err != nil {
							return violate(c.Name(), "", err), nil
						}
					}
				}
			}
			next++
		}
		for i, nd := range crc.Nodes {
			reps[i] = nil
			if nd.State == NodeDead {
				continue
			}
			rep, err := nd.Srv.Step()
			if err != nil {
				return violate("run-error", nd.ID, err), nil
			}
			reps[i] = rep
		}
		res.Cycles++
		for i, nd := range crc.Nodes {
			if reps[i] == nil {
				continue
			}
			for _, c := range nd.Checkers {
				if err := c.AfterStep(nd.RC, reps[i]); err != nil {
					return violate(c.Name(), nd.ID, err), nil
				}
			}
		}
		for _, c := range cfg.ClusterCheckers {
			if err := c.AfterStep(crc, reps); err != nil {
				return violate(c.Name(), "", err), nil
			}
		}
		r.advanceLedger(reps)

		if cycle >= lastEvent && r.allIdle() {
			// Two drain steps per surviving node: engines hold a report's
			// buffers for two Steps (the double-buffered report window),
			// and the leak checkers need both generations released.
			for extra := 1; extra <= 2; extra++ {
				crc.Cycle = cycle + extra
				for _, nd := range crc.Nodes {
					if nd.State == NodeDead {
						continue
					}
					nd.RC.Cycle = cycle + extra
					if _, err := nd.Srv.Step(); err != nil {
						return violate("run-error", nd.ID, err), nil
					}
				}
				res.Cycles++
			}
			crc.Drained = true
			break
		}
	}
	res.Drained = crc.Drained

	for _, nd := range crc.Nodes {
		if nd.State == NodeDead {
			continue // disposable: a killed node's carcass owes nothing
		}
		for _, c := range nd.Checkers {
			if err := c.End(nd.RC); err != nil {
				return violate(c.Name(), nd.ID, err), nil
			}
		}
	}
	for _, c := range cfg.ClusterCheckers {
		if err := c.End(crc); err != nil {
			return violate(c.Name(), "", err), nil
		}
	}
	res.Sessions = crc.Sessions
	return res, nil
}

func holds(pl *cluster.Placement, title, node string) bool {
	for _, h := range pl.Holders(title) {
		if h == node {
			return true
		}
	}
	return false
}

// allIdle reports whether every surviving node finished its work.
func (r *clusterRun) allIdle() bool {
	for _, nd := range r.crc.Nodes {
		if nd.State == NodeDead {
			continue
		}
		if nd.Srv.Engine().Active() != 0 || nd.Srv.RebuildRemaining() != 0 {
			return false
		}
	}
	return true
}

// load counts the sessions a node currently serves.
func (r *clusterRun) load(idx int) int {
	n := 0
	for _, s := range r.crc.Sessions {
		if s.Node == idx {
			n++
		}
	}
	return n
}

// candidates returns the nodes that may take a placement for title, in
// failover preference order refined by load: fewest live sessions
// first, placement rank breaking ties. Only active nodes qualify —
// draining nodes are leaving and dead ones are gone.
func (r *clusterRun) candidates(title string) []*NodeRun {
	var out []*NodeRun
	for _, holder := range r.crc.Placement.Holders(title) {
		for _, nd := range r.crc.Nodes {
			if nd.ID == holder && nd.State == NodeActive {
				out = append(out, nd)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return r.load(out[i].Index) < r.load(out[j].Index)
	})
	return out
}

// apply performs one event best-effort, mirroring the single-node
// runner's contract: every subset of a schedule stays runnable. It
// returns the node whose per-node observers should see the event (nil
// for cluster-level events).
func (r *clusterRun) apply(ev Event) (bool, *NodeRun, error) {
	crc := r.crc
	switch ev.Kind {
	case EventAdmit:
		for _, nd := range r.candidates(ev.Title) {
			sid, _, err := nd.Srv.Request(ev.Title)
			if err != nil {
				continue // rejection is legitimate; try the next holder
			}
			ses := &Session{
				Ordinal: len(crc.Sessions), Title: ev.Title,
				Node: nd.Index, SID: sid, Chain: []int{nd.Index},
			}
			crc.Sessions = append(crc.Sessions, ses)
			crc.byStream[[2]int{nd.Index, sid}] = ses
			nd.RC.Admitted = append(nd.RC.Admitted, sid)
			nd.RC.TitleOf[sid] = ev.Title
			return true, nd, nil
		}
		return false, nil, nil // no live holder, or all full: tolerated
	case EventCancel:
		if ev.Stream >= len(crc.Sessions) {
			return false, nil, nil
		}
		ses := crc.Sessions[ev.Stream]
		if ses.Paused {
			// Hanging up a parked session needs no engine work.
			ses.Paused = false
			ses.Cancelled = true
			return true, nil, nil
		}
		if ses.Node < 0 {
			return false, nil, nil
		}
		nd := crc.Nodes[ses.Node]
		if err := nd.Srv.Cancel(ses.SID); err != nil {
			return false, nil, nil // already finished: tolerated
		}
		delete(crc.byStream, [2]int{ses.Node, ses.SID})
		ses.Cancelled = true
		ses.Node = -1
		return true, nd, nil
	case EventFail, EventRepair, EventRebuild:
		nd := crc.Nodes[ev.Node]
		if nd.State == NodeDead {
			return false, nil, nil // shard is gone; its drives with it
		}
		applied, err := apply(nd.RC, ev, r.hooks)
		return applied, nd, err
	case EventNodeKill:
		nd := crc.Nodes[ev.Node]
		if nd.State == NodeDead {
			return false, nil, nil
		}
		nd.State = NodeDead
		r.failover(nd)
		return true, nil, nil
	case EventNodeDrain:
		nd := crc.Nodes[ev.Node]
		if nd.State != NodeActive {
			return false, nil, nil
		}
		nd.State = NodeDraining
		return true, nil, nil
	case EventPause:
		if ev.Stream >= len(crc.Sessions) {
			return false, nil, nil
		}
		ses := crc.Sessions[ev.Stream]
		if ses.Paused || ses.Node < 0 {
			return false, nil, nil
		}
		nd := crc.Nodes[ses.Node]
		next, _, ok := nd.Srv.StreamProgress(ses.SID)
		if !ok {
			return false, nil, nil
		}
		if err := nd.Srv.Cancel(ses.SID); err != nil {
			return false, nil, nil
		}
		delete(crc.byStream, [2]int{ses.Node, ses.SID})
		ses.Paused, ses.PausedNext = true, next
		ses.Node = -1
		return true, nd, nil
	case EventVcrResume:
		if ev.Stream >= len(crc.Sessions) {
			return false, nil, nil
		}
		ses := crc.Sessions[ev.Stream]
		if !ses.Paused {
			return false, nil, nil // pause was shrunk away, or resume already ran
		}
		nd := r.place(ses, ses.PausedNext)
		if nd == nil {
			return false, nil, nil // every holder refused: the viewer stays parked
		}
		return true, nd, nil
	case EventFF:
		if ev.Stream >= len(crc.Sessions) {
			return false, nil, nil
		}
		ses := crc.Sessions[ev.Stream]
		if ses.Paused || ses.Node < 0 {
			return false, nil, nil
		}
		nd := crc.Nodes[ses.Node]
		// Refusals (k′ bound) and engines without rate support both leave
		// the stream at 1x — legitimate.
		if err := nd.Srv.SetStreamRate(ses.SID, ev.Rate); err != nil {
			return false, nil, nil
		}
		return true, nd, nil
	case EventRewind:
		if ev.Stream >= len(crc.Sessions) {
			return false, nil, nil
		}
		ses := crc.Sessions[ev.Stream]
		target := ev.Track
		if target >= crc.Total {
			target = crc.Total - 1
		}
		if ses.Paused {
			ses.PausedNext = target // reposition the parked session
			return true, nil, nil
		}
		if ses.Node < 0 {
			return false, nil, nil
		}
		nd := crc.Nodes[ses.Node]
		if _, _, ok := nd.Srv.StreamProgress(ses.SID); !ok {
			return false, nil, nil
		}
		if err := nd.Srv.Cancel(ses.SID); err != nil {
			return false, nil, nil
		}
		delete(crc.byStream, [2]int{ses.Node, ses.SID})
		ses.Node = -1
		if to := r.place(ses, target); to != nil {
			return true, to, nil
		}
		// Every holder refused the re-admission: park at the target, so
		// the viewer's position survives the refusal.
		ses.Paused, ses.PausedNext = true, target
		return true, nil, nil
	}
	return false, nil, fmt.Errorf("chaos: unknown event kind %q", ev.Kind)
}

// place re-admits a session at the group floor of track at — the shared
// engine work of vcr-resume and rewind. It returns the serving node,
// or nil when no active holder had capacity (the session is untouched).
func (r *clusterRun) place(ses *Session, at int) *NodeRun {
	crc := r.crc
	startGroup := at/crc.Width + r.hooks.ResumeGroupOffset
	for _, nd := range r.candidates(ses.Title) {
		sid, _, err := nd.Srv.RequestAt(ses.Title, startGroup)
		if err != nil {
			continue
		}
		ses.Paused = false
		ses.Node, ses.SID = nd.Index, sid
		ses.ResumeFloor = startGroup * crc.Width
		if ses.ResumeFloor > ses.Next {
			// A forward seek: the watermark jumps to the restart floor so
			// later failovers resume from the seek, not the skipped past.
			ses.Next = ses.ResumeFloor
		}
		ses.Chain = append(ses.Chain, nd.Index)
		ses.Resumes++
		crc.byStream[[2]int{nd.Index, sid}] = ses
		nd.RC.Admitted = append(nd.RC.Admitted, sid)
		nd.RC.TitleOf[sid] = ses.Title
		nd.RC.ResumeStart[sid] = ses.ResumeFloor
		return nd
	}
	return nil
}

// failover moves every session the dead node served onto a surviving
// replica holder, resuming at the group boundary at or before the next
// owed track — the same handoff the network layer's RESUME performs,
// run deterministically in-process.
func (r *clusterRun) failover(dead *NodeRun) {
	crc := r.crc
	for _, ses := range crc.Sessions {
		if ses.Node != dead.Index {
			continue
		}
		delete(crc.byStream, [2]int{ses.Node, ses.SID})
		if ses.Next >= crc.Total {
			// Everything was delivered; only the finish notice died with
			// the node.
			ses.Finished = true
			ses.Node = -1
			continue
		}
		startGroup := ses.Next/crc.Width + r.hooks.ResumeGroupOffset
		moved := false
		for _, nd := range r.candidates(ses.Title) {
			sid, _, err := nd.Srv.RequestAt(ses.Title, startGroup)
			if err != nil {
				continue
			}
			ses.Node, ses.SID = nd.Index, sid
			ses.ResumeFloor = startGroup * crc.Width
			ses.Chain = append(ses.Chain, nd.Index)
			ses.Resumes++
			crc.byStream[[2]int{nd.Index, sid}] = ses
			nd.RC.Admitted = append(nd.RC.Admitted, sid)
			nd.RC.TitleOf[sid] = ses.Title
			nd.RC.ResumeStart[sid] = ses.ResumeFloor
			moved = true
			break
		}
		if !moved {
			ses.Lost = true
			ses.LostReason = fmt.Sprintf("no surviving holder with capacity for %s after %s died", ses.Title, dead.ID)
			ses.Node = -1
		}
	}
}

// advanceLedger folds one cycle's reports into the session ledger:
// delivered and hiccuped tracks advance Next, finish and termination
// notices retire sessions.
func (r *clusterRun) advanceLedger(reps []*sched.CycleReport) {
	crc := r.crc
	tracks := make(map[*Session][]int)
	for i, rep := range reps {
		if rep == nil {
			continue
		}
		for _, d := range rep.Delivered {
			if ses := crc.byStream[[2]int{i, d.StreamID}]; ses != nil {
				tracks[ses] = append(tracks[ses], d.Track)
			}
		}
		for _, h := range rep.Hiccups {
			if ses := crc.byStream[[2]int{i, h.StreamID}]; ses != nil {
				tracks[ses] = append(tracks[ses], h.Track)
			}
		}
	}
	for ses, ts := range tracks {
		sort.Ints(ts)
		for _, t := range ts {
			if t == ses.Next {
				ses.Next++
			}
		}
	}
	for i, rep := range reps {
		if rep == nil {
			continue
		}
		for _, sid := range rep.Finished {
			if ses := crc.byStream[[2]int{i, sid}]; ses != nil {
				ses.Finished = true
				ses.Node = -1
				delete(crc.byStream, [2]int{i, sid})
			}
		}
		for _, sid := range rep.Terminated {
			if ses := crc.byStream[[2]int{i, sid}]; ses != nil {
				ses.Terminated = true
				ses.Node = -1
				delete(crc.byStream, [2]int{i, sid})
			}
		}
	}
}

// ----------------------------------------------------------------------
// Cross-node continuity.

// CrossNodeContinuityChecker audits the cluster's central promise: a
// session followed across its whole ownership chain receives the
// title's bytes contiguously and bit-exactly. A failover may rewind to
// the group boundary at or before the next owed track (re-delivering
// at most one group's worth) but may never skip forward; a VCR verb
// may move the position anywhere, but delivery must then run
// consecutively from the new position's group floor; every delivered
// track's bytes must match the archived content; and when the cluster
// drains, every session has either finished the full title, was
// cancelled or terminated, is legitimately parked by a pause, or was
// lost with a recorded justification. The checker keeps its own
// per-session ledger — it audits the runner's failover and VCR
// arithmetic rather than trusting it.
type CrossNodeContinuityChecker struct {
	// next is the high-water completeness ledger (the furthest track
	// ever delivered, plus one); cursor the exact next track the
	// session's current engine stream owes. They diverge while a rewind
	// replays old ground.
	next, cursor map[int]int
	seenResumes  map[int]int
	// mark is the position the last applied VCR verb established (the
	// pause point, or a rewind target), from which the next resume's
	// restart floor is computed out of the checker's own ledger.
	mark map[int]int
}

// NewCrossNodeContinuityChecker builds the checker.
func NewCrossNodeContinuityChecker() *CrossNodeContinuityChecker {
	return &CrossNodeContinuityChecker{}
}

// Name implements ClusterChecker.
func (c *CrossNodeContinuityChecker) Name() string { return "cluster-continuity" }

// Begin implements ClusterChecker.
func (c *CrossNodeContinuityChecker) Begin(*ClusterRunContext) error {
	c.next = make(map[int]int)
	c.cursor = make(map[int]int)
	c.seenResumes = make(map[int]int)
	c.mark = make(map[int]int)
	return nil
}

// restart points the cursor at the group floor of track at, and syncs
// the resume count so the failover recompute in AfterStep does not
// clobber a VCR-established floor.
func (c *CrossNodeContinuityChecker) restart(crc *ClusterRunContext, o, at int) {
	c.cursor[o] = (at / crc.Width) * crc.Width
	c.seenResumes[o] = crc.Sessions[o].Resumes
}

// OnEvent implements ClusterEventObserver: VCR verbs move a session's
// position, so the checker moves its own ledger — from the event's
// arguments and its own cursor, never from the runner's bookkeeping.
func (c *CrossNodeContinuityChecker) OnEvent(crc *ClusterRunContext, ev Event) error {
	switch ev.Kind {
	case EventPause, EventVcrResume, EventRewind:
	default:
		return nil
	}
	if ev.Stream < 0 || ev.Stream >= len(crc.Sessions) {
		return nil
	}
	o := ev.Stream
	ses := crc.Sessions[o]
	switch ev.Kind {
	case EventPause:
		c.mark[o] = c.cursor[o]
	case EventVcrResume:
		at, ok := c.mark[o]
		if !ok {
			at = c.cursor[o]
		}
		c.restart(crc, o, at)
		delete(c.mark, o)
	case EventRewind:
		target := ev.Track
		if target >= crc.Total {
			target = crc.Total - 1
		}
		c.mark[o] = target
		if !ses.Paused {
			// Live re-admission happened; a parked rewind keeps the mark
			// for the eventual resume instead.
			c.restart(crc, o, target)
			delete(c.mark, o)
		}
	}
	return nil
}

// AfterStep implements ClusterChecker.
func (c *CrossNodeContinuityChecker) AfterStep(crc *ClusterRunContext, reps []*sched.CycleReport) error {
	type tr struct {
		track  int
		data   []byte
		hiccup bool
	}
	per := make(map[int][]tr)
	for i, rep := range reps {
		if rep == nil {
			continue
		}
		for _, d := range rep.Delivered {
			ses := crc.SessionOf(i, d.StreamID)
			if ses == nil {
				return fmt.Errorf("node%d delivered track %d of %s for a stream (%d) no session owns", i, d.Track, d.ObjectID, d.StreamID)
			}
			per[ses.Ordinal] = append(per[ses.Ordinal], tr{d.Track, d.Data, false})
		}
		for _, h := range rep.Hiccups {
			ses := crc.SessionOf(i, h.StreamID)
			if ses == nil {
				return fmt.Errorf("node%d hiccuped track %d for a stream (%d) no session owns", i, h.Track, h.StreamID)
			}
			per[ses.Ordinal] = append(per[ses.Ordinal], tr{h.Track, nil, true})
		}
	}
	ordinals := make([]int, 0, len(per))
	for o := range per {
		ordinals = append(ordinals, o)
	}
	sort.Ints(ordinals)
	for _, o := range ordinals {
		ses := crc.Sessions[o]
		if c.seenResumes[o] < ses.Resumes {
			// A failover happened since we last saw this session: from
			// our own ledger, the only legitimate restart is the group
			// boundary at or before the high-water mark.
			c.restart(crc, o, c.next[o])
		}
		ts := per[o]
		sort.Slice(ts, func(i, j int) bool { return ts[i].track < ts[j].track })
		for _, t := range ts {
			if !t.hiccup {
				if err := trace.CheckTrack(crc.Content[ses.Title], crc.TrackSize, t.track, t.data); err != nil {
					return fmt.Errorf("session %d (%s) on node chain %v: %w", o, ses.Title, ses.Chain, err)
				}
			}
			if t.track != c.cursor[o] {
				return fmt.Errorf("session %d (%s) received track %d, expected %d (high-water %d): gap, duplicate, or unbounded rewind across node chain %v",
					o, ses.Title, t.track, c.cursor[o], c.next[o], ses.Chain)
			}
			c.cursor[o]++
			if c.cursor[o] > c.next[o] {
				c.next[o] = c.cursor[o]
			}
		}
	}
	return nil
}

// End implements ClusterChecker.
func (c *CrossNodeContinuityChecker) End(crc *ClusterRunContext) error {
	for o, ses := range crc.Sessions {
		switch {
		case ses.Cancelled, ses.Terminated:
			// Hung up, or the paper's degradation of service.
		case ses.Lost:
			if ses.LostReason == "" {
				return fmt.Errorf("session %d (%s) lost without justification", o, ses.Title)
			}
		case ses.Finished:
			if c.next[o] != crc.Total {
				return fmt.Errorf("session %d (%s) finished after %d of %d tracks across node chain %v",
					o, ses.Title, c.next[o], crc.Total, ses.Chain)
			}
		case ses.Paused:
			// Parked by a pause (or a refused rewind) and never resumed —
			// a legitimate way to end a run, and what every schedule a
			// shrinker cut the resume out of looks like.
		default:
			if crc.Drained {
				return fmt.Errorf("session %d (%s) stranded at track %d after the cluster drained", o, ses.Title, c.next[o])
			}
			// MaxCycles truncated the run mid-stream: legitimate.
		}
	}
	return nil
}

// ----------------------------------------------------------------------
// Generation and shrinking.

// GenerateCluster draws one randomized cluster schedule: a base
// single-node schedule fanned across nodes, drive faults pinned to
// shards, and node-level kill/drain events layered on top.
func GenerateCluster(rng *rand.Rand, scheme string, nodes int) Schedule {
	if nodes < 2 {
		nodes = 3
	}
	s := Generate(rng, scheme)
	s.Nodes = nodes
	s.Replicas = 2
	if s.Replicas > nodes {
		s.Replicas = nodes
	}
	s.PlacementSeed = rng.Int63()
	// Pin each drive-fault chain (fail → repair/rebuild) to one shard,
	// so pairs stay pairs.
	driveNode := make(map[int]int)
	for i := range s.Events {
		ev := &s.Events[i]
		switch ev.Kind {
		case EventFail, EventRepair, EventRebuild:
			n, ok := driveNode[ev.Drive]
			if !ok {
				n = rng.Intn(nodes)
				driveNode[ev.Drive] = n
			}
			ev.Node = n
		}
	}
	// Usually one kill; sometimes a drain elsewhere. Killing and
	// draining down to one node is interesting, not catastrophic:
	// unplaceable sessions are the admitted loss the checker exempts.
	victim := -1
	if rng.Float64() < 0.75 {
		victim = rng.Intn(nodes)
		s.Events = append(s.Events, Event{Cycle: 3 + rng.Intn(8), Kind: EventNodeKill, Node: victim})
	}
	if rng.Float64() < 0.40 {
		d := rng.Intn(nodes)
		if d == victim {
			d = (d + 1) % nodes
		}
		s.Events = append(s.Events, Event{Cycle: 4 + rng.Intn(10), Kind: EventNodeDrain, Node: d})
	}
	// Failovers rewind up to a group per resume; pad the tail so
	// resumed sessions can still play out.
	s.MaxCycles += s.TitleGroups * (s.ClusterSize - 1)
	return s
}

// ShrinkCluster is Shrink for cluster schedules: ddmin over the event
// list with RunCluster as the reproduction predicate, then a MaxCycles
// trim.
func ShrinkCluster(sch Schedule, orig Violation, newCheckers func() []Checker, newCluster func() []ClusterChecker, hooks Hooks) Schedule {
	run := func(s Schedule) *Violation {
		res, err := RunCluster(ClusterRunConfig{
			Schedule: s, NewCheckers: newCheckers, ClusterCheckers: newCluster(), Hooks: hooks,
		})
		if err != nil || res.Violation == nil {
			return nil
		}
		return res.Violation
	}
	reproduces := func(s Schedule) bool {
		v := run(s)
		return v != nil && v.Checker == orig.Checker
	}
	out := sch
	out.Events = ddmin(sch.Events, func(sub []Event) bool {
		s := sch
		s.Events = sub
		return reproduces(s)
	})
	if v := run(out); v != nil && v.Checker == orig.Checker {
		trimmed := out
		trimmed.MaxCycles = v.Cycle + 2
		if trimmed.MaxCycles < out.MaxCycles && reproduces(trimmed) {
			out = trimmed
		}
	}
	return out
}
