package chaos

import (
	"errors"
	"math/rand"

	"ftmm/internal/failure"
	"ftmm/internal/sched"
)

// CampaignConfig configures a batch of generated chaos runs.
type CampaignConfig struct {
	// Seed is the campaign's master seed. Run i derives its own seed
	// with failure.TrialSeed(Seed, i), so results depend only on (Seed,
	// i) — never on worker count or completion order.
	Seed int64
	// Runs is how many schedules to generate and execute (default 20).
	Runs int
	// Schemes rotates scheme names across runs (run i uses
	// Schemes[i%len]); default SchemeNames().
	Schemes []string
	// Workers bounds campaign-level parallelism: 0 uses GOMAXPROCS, 1
	// runs serial. Results are bit-identical at any setting.
	Workers int
	// NewCheckers builds a fresh checker set per run (and per shrink
	// attempt); default DefaultCheckers.
	NewCheckers func() []Checker
	// Nodes > 1 runs a cluster campaign: schedules come from
	// GenerateCluster and execute under RunCluster, with the
	// NewClusterCheckers set layered across nodes. 0 or 1 is the
	// classic single-node campaign.
	Nodes int
	// NewClusterCheckers builds the cluster-level checker set per run;
	// default DefaultClusterCheckers. Only used when Nodes > 1.
	NewClusterCheckers func() []ClusterChecker
	// Hooks are threaded into every run, letting tests inject engine
	// bugs the campaign must catch.
	Hooks Hooks
	// NoShrink skips trace minimization (for quick smoke runs).
	NoShrink bool
}

// RunRecord is one violating run of a campaign.
type RunRecord struct {
	Run    int    `json:"run"`
	Seed   int64  `json:"seed"`
	Scheme string `json:"scheme"`
	// Events is the generated schedule's event count, before shrinking.
	Events    int       `json:"events"`
	Violation Violation `json:"violation"`
	// Shrunk is the minimized reproducing schedule; export it with
	// ToSpec for replay. Equal to the generated schedule when shrinking
	// is disabled.
	Shrunk Schedule `json:"shrunk"`
}

// CampaignResult is a campaign's deterministic outcome: every violating
// run in run order. Serializing it with encoding/json yields the
// byte-identical artifact the reproducibility tests compare.
type CampaignResult struct {
	Runs       int         `json:"runs"`
	Violations []RunRecord `json:"violations"`
}

// Campaign generates and executes cfg.Runs schedules across a worker
// pool, shrinking every violation to a minimal reproducing trace.
func Campaign(cfg CampaignConfig) (*CampaignResult, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 20
	}
	if len(cfg.Schemes) == 0 {
		cfg.Schemes = SchemeNames()
	}
	if cfg.NewCheckers == nil {
		cfg.NewCheckers = DefaultCheckers
	}
	if cfg.NewClusterCheckers == nil {
		cfg.NewClusterCheckers = DefaultClusterCheckers
	}

	records := make([]*RunRecord, cfg.Runs)
	// sched.RunClusters is the repo's deterministic worker pool: work
	// item i lands in slot i regardless of which worker ran it or when.
	err := sched.RunClusters(cfg.Runs, cfg.Workers, func(i int) error {
		seed := failure.TrialSeed(cfg.Seed, i)
		rng := rand.New(rand.NewSource(seed))
		scheme := cfg.Schemes[i%len(cfg.Schemes)]
		var schedule Schedule
		var violation *Violation
		if cfg.Nodes > 1 {
			schedule = GenerateCluster(rng, scheme, cfg.Nodes)
			res, err := RunCluster(ClusterRunConfig{
				Schedule: schedule, NewCheckers: cfg.NewCheckers,
				ClusterCheckers: cfg.NewClusterCheckers(), Hooks: cfg.Hooks,
			})
			if err != nil {
				return err
			}
			violation = res.Violation
		} else {
			schedule = Generate(rng, scheme)
			res, err := Run(RunConfig{Schedule: schedule, Checkers: cfg.NewCheckers(), Hooks: cfg.Hooks})
			if err != nil {
				return err
			}
			violation = res.Violation
		}
		if violation == nil {
			return nil
		}
		shrunk := schedule
		if !cfg.NoShrink {
			if cfg.Nodes > 1 {
				shrunk = ShrinkCluster(schedule, *violation, cfg.NewCheckers, cfg.NewClusterCheckers, cfg.Hooks)
			} else {
				shrunk = Shrink(schedule, *violation, cfg.NewCheckers, cfg.Hooks)
			}
		}
		records[i] = &RunRecord{
			Run: i, Seed: seed, Scheme: scheme,
			Events:    len(schedule.Events),
			Violation: *violation,
			Shrunk:    shrunk,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &CampaignResult{Runs: cfg.Runs, Violations: []RunRecord{}}
	for _, r := range records {
		if r != nil {
			out.Violations = append(out.Violations, *r)
		}
	}
	return out, nil
}

// ErrViolations is returned by CheckResult when a campaign found any
// invariant breach.
var ErrViolations = errors.New("chaos: campaign found invariant violations")

// CheckResult folds a campaign result into pass/fail for CLI and CI
// callers.
func CheckResult(res *CampaignResult) error {
	if len(res.Violations) > 0 {
		return ErrViolations
	}
	return nil
}
