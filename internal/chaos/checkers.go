package chaos

import (
	"fmt"
	"sort"

	"ftmm/internal/analytic"
	"ftmm/internal/rebuild"
	"ftmm/internal/sched"
	"ftmm/internal/schemes"
	"ftmm/internal/server"
	"ftmm/internal/trace"
)

// DefaultCheckers returns a fresh instance of every standard invariant
// checker. Checkers carry per-run state, so each Run needs its own set.
func DefaultCheckers() []Checker {
	return []Checker{
		NewContinuityChecker(),
		NewParityChecker(),
		NewLeakChecker(),
		NewAdmissionChecker(),
		NewRetentionChecker(),
	}
}

// ----------------------------------------------------------------------
// Continuity: the paper's central claim per scheme.

// lossKey attributes a Non-clustered hiccup to one (stream, cluster
// failure) pair for bounding the transition's track loss.
type lossKey struct {
	stream, cluster, failCycle int
}

// ContinuityChecker enforces delivery continuity: SR, SG and IB mask
// boundary failures with zero hiccups (IB may terminate streams when
// its reserve runs out — that is degradation, not discontinuity; the
// other schemes must never terminate). Non-clustered hiccups must fall
// inside the bounded transition window after a data-disk failure on the
// track's cluster, lose at most one parity group's worth of tracks per
// stream per transition (Figures 6-7), or hit a cluster running
// unprotected (K exhausted — the paper's degradation of service, whose
// recurring loss is legitimate).
type ContinuityChecker struct {
	isNC, isIB bool
	// lossCap is the per-stream per-transition hiccup bound: C-1 for the
	// simple switchover (the rest of the current group), 1 for the
	// alternate switchover (only the failed drive's unread track).
	lossCap int
	// window is how many cycles past a failure (or past leaving
	// unprotected mode) a hiccup may still surface: marking happens at
	// read time, delivery up to a group's width later, plus slack.
	window          int
	dataFail        map[int][]int
	lastUnprotected map[int]int
	losses          map[lossKey]int
}

// NewContinuityChecker builds the checker.
func NewContinuityChecker() *ContinuityChecker { return &ContinuityChecker{} }

// Name implements Checker.
func (c *ContinuityChecker) Name() string { return "continuity" }

// Begin implements Checker.
func (c *ContinuityChecker) Begin(rc *RunContext) error {
	scheme, policy, err := server.ParseScheme(rc.Schedule.Scheme)
	if err != nil {
		return err
	}
	c.isNC = scheme == analytic.NonClustered
	c.isIB = scheme == analytic.ImprovedBandwidth
	c.lossCap = rc.Schedule.ClusterSize - 1
	if c.isNC && policy == schemes.AlternateSwitchover {
		c.lossCap = 1
	}
	c.window = rc.Schedule.ClusterSize + 4
	c.dataFail = make(map[int][]int)
	c.lastUnprotected = make(map[int]int)
	c.losses = make(map[lossKey]int)
	return nil
}

// OnEvent implements EventObserver: it records data-disk failures per
// cluster, which open Non-clustered loss windows.
func (c *ContinuityChecker) OnEvent(rc *RunContext, ev Event) error {
	if !c.isNC || ev.Kind != EventFail {
		return nil
	}
	csz := rc.Schedule.ClusterSize
	if ev.Drive%csz == csz-1 {
		return nil // dedicated parity drive: no delivery impact
	}
	cl := ev.Drive / csz
	c.dataFail[cl] = append(c.dataFail[cl], ev.Cycle)
	return nil
}

// AfterStep implements Checker.
func (c *ContinuityChecker) AfterStep(rc *RunContext, rep *sched.CycleReport) error {
	if !c.isIB && len(rep.Terminated) > 0 {
		return fmt.Errorf("stream %d terminated by a scheme that must never degrade service", rep.Terminated[0])
	}
	if !c.isNC {
		if len(rep.Hiccups) > 0 {
			h := rep.Hiccups[0]
			return fmt.Errorf("hiccup on stream %d track %d (%s): scheme must mask failures with zero hiccups",
				h.StreamID, h.Track, h.Reason)
		}
		return nil
	}

	// Non-clustered: refresh the unprotected-cluster trail, then
	// attribute every hiccup.
	unprot, _ := rc.Srv.Engine().(interface{ ClusterUnprotected(int) bool })
	clusters := rc.Schedule.Disks / rc.Schedule.ClusterSize
	if unprot != nil {
		for cl := 0; cl < clusters; cl++ {
			if unprot.ClusterUnprotected(cl) {
				c.lastUnprotected[cl] = rc.Cycle
			}
		}
	}
	width := rc.Schedule.ClusterSize - 1
	lay := rc.Srv.Catalog().Layout()
	for _, h := range rep.Hiccups {
		obj, ok := lay.Object(h.ObjectID)
		if !ok {
			return fmt.Errorf("hiccup on stream %d references unknown object %q", h.StreamID, h.ObjectID)
		}
		cl := obj.Groups[h.Track/width].Cluster
		if last, saw := c.lastUnprotected[cl]; saw && rc.Cycle-last <= c.window {
			continue // degradation of service: recurring loss is legitimate
		}
		failCycle, open := -1, false
		for _, f := range c.dataFail[cl] {
			if f <= rc.Cycle && rc.Cycle-f <= c.window && f > failCycle {
				failCycle, open = f, true
			}
		}
		if !open {
			return fmt.Errorf("hiccup on stream %d track %d (%s) at cycle %d with no data-disk failure on cluster %d within the last %d cycles",
				h.StreamID, h.Track, h.Reason, rc.Cycle, cl, c.window)
		}
		key := lossKey{stream: h.StreamID, cluster: cl, failCycle: failCycle}
		c.losses[key]++
		if c.losses[key] > c.lossCap {
			return fmt.Errorf("stream %d lost %d tracks in the transition after cluster %d's failure at cycle %d; bound is %d",
				h.StreamID, c.losses[key], cl, failCycle, c.lossCap)
		}
	}
	return nil
}

// End implements Checker.
func (c *ContinuityChecker) End(*RunContext) error { return nil }

// ----------------------------------------------------------------------
// Parity consistency after repair and rebuild.

// ParityChecker audits the parity equation of every group a repaired
// drive touches — immediately after an instant repair, and at the cycle
// an online rebuild completes — and the whole farm once the run drains.
// A rebuild that skips a write leaves an unreadable (never-written)
// track in a fully-operational group, which the strict check flags.
type ParityChecker struct {
	pending []int
}

// NewParityChecker builds the checker.
func NewParityChecker() *ParityChecker { return &ParityChecker{} }

// Name implements Checker.
func (p *ParityChecker) Name() string { return "parity" }

// Begin implements Checker.
func (p *ParityChecker) Begin(*RunContext) error {
	p.pending = nil
	return nil
}

// OnEvent implements EventObserver.
func (p *ParityChecker) OnEvent(rc *RunContext, ev Event) error {
	switch ev.Kind {
	case EventRepair:
		return rebuild.CheckDrive(rc.Srv.Farm(), rc.Srv.Catalog().Layout(), ev.Drive)
	case EventRebuild:
		p.pending = append(p.pending, ev.Drive)
	}
	return nil
}

// AfterStep implements Checker: when the in-flight online rebuild
// finishes, its drive must be parity-consistent.
func (p *ParityChecker) AfterStep(rc *RunContext, _ *sched.CycleReport) error {
	if len(p.pending) == 0 || rc.Srv.RebuildRemaining() != 0 {
		return nil
	}
	for _, drive := range p.pending {
		if err := rebuild.CheckDrive(rc.Srv.Farm(), rc.Srv.Catalog().Layout(), drive); err != nil {
			return err
		}
	}
	p.pending = nil
	return nil
}

// End implements Checker: with no rebuild left hanging, the whole farm
// must satisfy the parity equation (failed-member groups are skipped
// inside CheckAll).
func (p *ParityChecker) End(rc *RunContext) error {
	if len(p.pending) > 0 {
		return nil // rebuild still running at MaxCycles; drive is legitimately partial
	}
	return rebuild.CheckAll(rc.Srv.Farm(), rc.Srv.Catalog().Layout())
}

// ----------------------------------------------------------------------
// Buffer accounting.

// LeakChecker asserts that a drained server holds no buffers: every
// refcounted arena buffer was Released and the track-accounting pool is
// back to zero. It only fires when the run actually drained — a
// schedule truncated by MaxCycles with streams still playing legitimately
// holds buffers.
type LeakChecker struct{}

// NewLeakChecker builds the checker.
func NewLeakChecker() *LeakChecker { return &LeakChecker{} }

// Name implements Checker.
func (l *LeakChecker) Name() string { return "leak" }

// Begin implements Checker.
func (l *LeakChecker) Begin(*RunContext) error { return nil }

// AfterStep implements Checker.
func (l *LeakChecker) AfterStep(*RunContext, *sched.CycleReport) error { return nil }

// End implements Checker.
func (l *LeakChecker) End(rc *RunContext) error {
	eng := rc.Srv.Engine()
	if eng.Active() != 0 {
		return nil
	}
	if n := eng.Arena().Outstanding(); n != 0 {
		return fmt.Errorf("%d arena buffers still checked out after drain", n)
	}
	if n := eng.BufferInUse(); n != 0 {
		return fmt.Errorf("%d pool tracks still in use after drain", n)
	}
	return nil
}

// ----------------------------------------------------------------------
// Admission bound.

// AdmissionChecker asserts the engine never serves more simultaneous
// k′-weighted streams than the analytic N_p of equations (8)-(11)
// allows for the run's design point: a fast-forwarding stream at rate r
// counts r times, because it draws r tracks per cycle. The engines'
// per-cluster slot caps floor earlier than the analytic bound
// (⌊x⌋·m <= ⌊x·m⌋), so exceeding N_p is always an engine bug, never
// rounding.
type AdmissionChecker struct {
	bound int
}

// NewAdmissionChecker builds the checker.
func NewAdmissionChecker() *AdmissionChecker { return &AdmissionChecker{} }

// Name implements Checker.
func (a *AdmissionChecker) Name() string { return "admission" }

// Begin implements Checker.
func (a *AdmissionChecker) Begin(rc *RunContext) error {
	scheme, _, err := server.ParseScheme(rc.Schedule.Scheme)
	if err != nil {
		return err
	}
	cfg := analytic.Config{
		Disk:       rc.Srv.Farm().Params(),
		ObjectRate: rc.Srv.Rate(),
		D:          rc.Schedule.Disks,
		C:          rc.Schedule.ClusterSize,
		G:          rc.Schedule.DeclusterGroup,
		K:          rc.Schedule.K,
	}
	bound, err := cfg.MaxStreamsInt(scheme)
	if err != nil {
		return fmt.Errorf("computing analytic stream bound: %w", err)
	}
	a.bound = bound
	return nil
}

// AfterStep implements Checker.
func (a *AdmissionChecker) AfterStep(rc *RunContext, _ *sched.CycleReport) error {
	if active := rc.Srv.WeightedActive(); active > a.bound {
		return fmt.Errorf("%d k′-weighted active streams exceed the analytic bound N=%d", active, a.bound)
	}
	return nil
}

// End implements Checker.
func (a *AdmissionChecker) End(*RunContext) error { return nil }

// ----------------------------------------------------------------------
// Report retention and delivery integrity.

// RetentionChecker audits the report contract: a Clone taken inside the
// validity window equals the live report; the report's buffer gauge
// matches the engine's; every delivered track's bytes are exactly the
// archived content (a recycled-too-early buffer delivers plausible but
// wrong bytes — the failure mode the ownership rules exist to prevent);
// and each stream's deliveries and hiccups together advance one
// consecutive track run per cycle, with no duplicates or skips.
type RetentionChecker struct {
	nextTrack map[int]int
	perStream map[int][]int
	// rebuildActive tracks whether an online rebuild could have advanced
	// inside the Step being audited. The server advances rebuilds after
	// the engine's end-of-cycle snapshot, and completion may release
	// buffers (Non-clustered drops XOR accumulators), so on those steps
	// the live gauge may legitimately run below the report's.
	rebuildActive bool
}

// NewRetentionChecker builds the checker.
func NewRetentionChecker() *RetentionChecker { return &RetentionChecker{} }

// Name implements Checker.
func (r *RetentionChecker) Name() string { return "retention" }

// Begin implements Checker.
func (r *RetentionChecker) Begin(*RunContext) error {
	r.nextTrack = make(map[int]int)
	r.perStream = make(map[int][]int)
	r.rebuildActive = false
	return nil
}

// OnEvent implements EventObserver: a rebuild started this cycle may
// also complete inside the same Step (large budgets), so the gauge
// exemption must cover it.
func (r *RetentionChecker) OnEvent(_ *RunContext, ev Event) error {
	if ev.Kind == EventRebuild {
		r.rebuildActive = true
	}
	return nil
}

// AfterStep implements Checker.
func (r *RetentionChecker) AfterStep(rc *RunContext, rep *sched.CycleReport) error {
	if !rep.Clone().Equal(rep) {
		return fmt.Errorf("cycle %d: Clone diverges from the live report inside its validity window", rep.Cycle)
	}
	live := rc.Srv.Engine().BufferInUse()
	if rep.BufferInUse != live && !(r.rebuildActive && live < rep.BufferInUse) {
		return fmt.Errorf("cycle %d: report says %d buffers in use, engine says %d",
			rep.Cycle, rep.BufferInUse, live)
	}
	r.rebuildActive = rc.Srv.RebuildRemaining() > 0
	for id := range r.perStream {
		delete(r.perStream, id)
	}
	for _, d := range rep.Delivered {
		content, ok := rc.Content[d.ObjectID]
		if !ok {
			return fmt.Errorf("cycle %d: delivery for unknown object %q", rep.Cycle, d.ObjectID)
		}
		if err := trace.CheckTrack(content, rc.TrackSize, d.Track, d.Data); err != nil {
			return fmt.Errorf("cycle %d: stream %d: %w", rep.Cycle, d.StreamID, err)
		}
		r.perStream[d.StreamID] = append(r.perStream[d.StreamID], d.Track)
	}
	for _, h := range rep.Hiccups {
		r.perStream[h.StreamID] = append(r.perStream[h.StreamID], h.Track)
	}
	ids := make([]int, 0, len(r.perStream))
	for id := range r.perStream {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		tracks := r.perStream[id]
		sort.Ints(tracks)
		expect, seen := r.nextTrack[id]
		if !seen && rc.ResumeStart != nil {
			expect = rc.ResumeStart[id] // failed-over stream: starts at its resume boundary
		}
		for i, t := range tracks {
			if t != expect+i {
				return fmt.Errorf("cycle %d: stream %d advanced to track %d, expected %d (skipped or duplicated delivery)",
					rep.Cycle, id, t, expect+i)
			}
		}
		r.nextTrack[id] = expect + len(tracks)
	}
	return nil
}

// End implements Checker.
func (r *RetentionChecker) End(*RunContext) error { return nil }
