package chaos

import (
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ftmm/internal/failure"
	"ftmm/internal/scenario"
	"ftmm/internal/server"
)

// seedFlag lets CI and bug reports pin a campaign:
//
//	go test ./internal/chaos -run Campaign -seed 1
var seedFlag = flag.Int64("seed", 1, "master seed for chaos campaigns")

// corruptTrackOnDrive overwrites the first laid-out, readable track on
// the drive with wrong bytes. Wired into Hooks.AfterRepair it simulates
// a buggy rebuild — one that restored garbage (or, equivalently for the
// parity equation, skipped a write) — which the parity checker must
// catch. AllObjects is sorted, so the choice of track is deterministic.
func corruptTrackOnDrive(srv *server.Server, drive int) error {
	farm := srv.Farm()
	drv, err := farm.Drive(drive)
	if err != nil {
		return err
	}
	for _, obj := range srv.Catalog().Layout().AllObjects() {
		for gi := range obj.Groups {
			g := &obj.Groups[gi]
			for _, loc := range g.Data {
				if loc.Disk != drive {
					continue
				}
				data, err := drv.ReadTrack(loc.Track)
				if err != nil {
					continue
				}
				data[0] ^= 0xFF
				return drv.WriteTrack(loc.Track, data)
			}
			if g.Parity.Disk == drive {
				data, err := drv.ReadTrack(g.Parity.Track)
				if err != nil {
					continue
				}
				data[0] ^= 0xFF
				return drv.WriteTrack(g.Parity.Track, data)
			}
		}
	}
	return nil
}

func marshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestCampaignCleanAcrossSchemes is the harness's main claim: every
// scheme engine survives randomized fault schedules with all five
// invariants intact.
func TestCampaignCleanAcrossSchemes(t *testing.T) {
	res, err := Campaign(CampaignConfig{Seed: *seedFlag, Runs: 20})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("run %d (%s, seed %d): %s violation at cycle %d: %s\nshrunk trace (%d events): %s",
			v.Run, v.Scheme, v.Seed, v.Violation.Checker, v.Violation.Cycle, v.Violation.Detail,
			len(v.Shrunk.Events), marshal(t, v.Shrunk))
	}
}

// TestCampaignReproducible pins seed determinism: the same seed yields
// a byte-identical campaign result, twice in a row, including the
// shrunk traces of any violations. The sabotage hook guarantees the
// comparison covers violating runs, not just an empty set.
func TestCampaignReproducible(t *testing.T) {
	cfg := CampaignConfig{
		Seed: *seedFlag, Runs: 8,
		Hooks: Hooks{AfterRepair: corruptTrackOnDrive},
	}
	a, err := Campaign(cfg)
	if err != nil {
		t.Fatalf("first campaign: %v", err)
	}
	b, err := Campaign(cfg)
	if err != nil {
		t.Fatalf("second campaign: %v", err)
	}
	if len(a.Violations) == 0 {
		t.Fatalf("sabotaged campaign found no violations; seed %d generated no instant repairs — pick another seed", *seedFlag)
	}
	if ja, jb := marshal(t, a), marshal(t, b); string(ja) != string(jb) {
		t.Errorf("same seed, different results:\n%s\n%s", ja, jb)
	}
}

// TestCampaignWorkerInvariance pins the determinism contract across
// parallelism: workers 1 and 8 produce byte-identical violation sets.
func TestCampaignWorkerInvariance(t *testing.T) {
	base := CampaignConfig{
		Seed: *seedFlag, Runs: 8,
		Hooks: Hooks{AfterRepair: corruptTrackOnDrive},
	}
	serial, parallel := base, base
	serial.Workers, parallel.Workers = 1, 8
	a, err := Campaign(serial)
	if err != nil {
		t.Fatalf("serial campaign: %v", err)
	}
	b, err := Campaign(parallel)
	if err != nil {
		t.Fatalf("parallel campaign: %v", err)
	}
	if len(a.Violations) == 0 {
		t.Fatalf("sabotaged campaign found no violations; seed %d generated no instant repairs — pick another seed", *seedFlag)
	}
	if ja, jb := marshal(t, a), marshal(t, b); string(ja) != string(jb) {
		t.Errorf("workers=1 and workers=8 disagree:\n%s\n%s", ja, jb)
	}
}

// TestCampaignCatchesInjectedRebuildBug is the harness's own acceptance
// test: a deliberately broken repair (one track restored wrong) must be
// caught by the parity checker and shrunk to a short trace.
func TestCampaignCatchesInjectedRebuildBug(t *testing.T) {
	sch := Schedule{
		Scheme: "sr", Disks: 8, ClusterSize: 4, K: 1,
		Titles: 2, TitleGroups: 3, MaxCycles: 60,
		Events: []Event{
			{Cycle: 0, Kind: EventAdmit, Title: "title0"},
			{Cycle: 1, Kind: EventAdmit, Title: "title1"},
			{Cycle: 2, Kind: EventFail, Drive: 1},
			{Cycle: 4, Kind: EventRepair, Drive: 1},
			{Cycle: 5, Kind: EventAdmit, Title: "title0"},
			{Cycle: 6, Kind: EventFail, Drive: 6},
			{Cycle: 8, Kind: EventRepair, Drive: 6},
			{Cycle: 9, Kind: EventCancel, Stream: 0},
			{Cycle: 10, Kind: EventCancel, Stream: 2},
		},
	}
	hooks := Hooks{AfterRepair: corruptTrackOnDrive}
	res, err := Run(RunConfig{Schedule: sch, Checkers: DefaultCheckers(), Hooks: hooks})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Violation == nil {
		t.Fatal("corrupted repair went undetected")
	}
	if res.Violation.Checker != "parity" {
		t.Fatalf("expected the parity checker to fire, got %q: %s", res.Violation.Checker, res.Violation.Detail)
	}
	shrunk := Shrink(sch, *res.Violation, DefaultCheckers, hooks)
	if n := len(shrunk.Events); n > 10 {
		t.Errorf("shrunk trace has %d events, want <= 10: %s", n, marshal(t, shrunk))
	}
	// The minimal reproduction is one admission (titles are staged to
	// disk only when a stream requests them — without it the farm holds
	// no tracks to corrupt), the failure, and its corrupted repair.
	if n := len(shrunk.Events); n != 3 {
		t.Errorf("shrunk to %d events, ddmin should reach the 3-event minimum: %s", n, marshal(t, shrunk))
	}
	// The shrunk trace must still reproduce when replayed from its
	// scenario form (the corpus round-trip).
	replay := FromSpec(shrunk.ToSpec())
	res2, err := Run(RunConfig{Schedule: *replay, Checkers: DefaultCheckers(), Hooks: hooks})
	if err != nil {
		t.Fatalf("replay run: %v", err)
	}
	if res2.Violation == nil || res2.Violation.Checker != "parity" {
		t.Errorf("shrunk trace did not reproduce after a scenario round-trip: %+v", res2.Violation)
	}
}

// TestScheduleSpecRoundTrip checks that every generated schedule
// survives Schedule -> scenario.Spec -> Schedule with its semantics
// intact (spec validation included — the corpus under scenarios/ is
// written through this path).
func TestScheduleSpecRoundTrip(t *testing.T) {
	for i := 0; i < 30; i++ {
		sch := generateAt(t, *seedFlag, i)
		spec := sch.ToSpec()
		if err := spec.Validate(); err != nil {
			t.Fatalf("schedule %d: exported spec invalid: %v\n%s", i, err, marshal(t, sch))
		}
		back := FromSpec(spec)
		if err := back.Validate(); err != nil {
			t.Fatalf("schedule %d: round-tripped schedule invalid: %v", i, err)
		}
	}
}

// TestChaosCorpus replays every committed regression trace under
// scenarios/chaos-*.json through the full checker set; all must hold.
func TestChaosCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "chaos-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no chaos regression traces under scenarios/")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := scenario.Parse(data)
			if err != nil {
				t.Fatal(err)
			}
			sch := FromSpec(spec)
			var violation *Violation
			if sch.Nodes > 1 {
				res, err := RunCluster(ClusterRunConfig{Schedule: *sch})
				if err != nil {
					t.Fatalf("cluster run: %v", err)
				}
				violation = res.Violation
			} else {
				res, err := Run(RunConfig{Schedule: *sch, Checkers: DefaultCheckers()})
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				violation = res.Violation
			}
			if violation != nil {
				t.Errorf("%s violation at cycle %d: %s",
					violation.Checker, violation.Cycle, violation.Detail)
			}
		})
	}
}

func generateAt(t *testing.T, seed int64, i int) Schedule {
	t.Helper()
	schemes := SchemeNames()
	rng := rand.New(rand.NewSource(failure.TrialSeed(seed, i)))
	return Generate(rng, schemes[i%len(schemes)])
}
