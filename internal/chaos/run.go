package chaos

import (
	"fmt"
	"sort"

	"ftmm/internal/disk"
	"ftmm/internal/sched"
	"ftmm/internal/server"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// Violation is one invariant breach, stamped with the checker that
// caught it. Detail strings are deterministic for a given schedule, so
// violations compare byte-identical across runs and worker counts.
type Violation struct {
	Checker string `json:"checker"`
	Cycle   int    `json:"cycle"`
	Detail  string `json:"detail"`
}

// RunResult summarizes one executed schedule.
type RunResult struct {
	// Cycles is how many cycles actually ran (drain step included).
	Cycles int
	// Violation is the first invariant breach, nil for a clean run. The
	// runner stops at the first breach so the shrinker's reproduction
	// predicate is a pure function of the schedule.
	Violation *Violation
}

// RunContext is what checkers see: the live server, the schedule, the
// synthetic catalog, and admission bookkeeping.
type RunContext struct {
	Srv      *server.Server
	Schedule *Schedule
	// Content maps title IDs to the exact bytes archived for them.
	Content   map[string][]byte
	TrackSize int
	// Cycle is the index of the cycle currently being checked.
	Cycle int
	// Admitted lists engine stream IDs in admission order (the ordinal
	// space cancel events address).
	Admitted []int
	// TitleOf maps an engine stream ID to the title it plays.
	TitleOf map[int]string
	// ResumeStart maps engine stream IDs admitted mid-title (cluster
	// session failover lands on a replica at a group boundary, VCR
	// resume/rewind re-admits at a group floor) to their first owed
	// track. Checkers consult it instead of assuming every stream starts
	// at track 0.
	ResumeStart map[int]int
	// Paused maps stream ordinals parked by a pause (or a refused
	// rewind) to the next track they are owed on resume.
	Paused map[int]int
}

// Checker audits one invariant over a run. Begin is called once before
// the first cycle, AfterStep after every cycle with that cycle's
// report, End once after the run drains. Any returned error becomes a
// Violation carrying the checker's Name.
type Checker interface {
	Name() string
	Begin(rc *RunContext) error
	AfterStep(rc *RunContext, rep *sched.CycleReport) error
	End(rc *RunContext) error
}

// EventObserver is implemented by checkers that need to see schedule
// events as they are applied. OnEvent fires only for events that took
// effect (a repair of a healthy drive, say, is skipped, not observed),
// after any Hooks ran — so a hook-injected engine bug is already in
// place when the checker looks.
type EventObserver interface {
	OnEvent(rc *RunContext, ev Event) error
}

// Hooks lets tests sabotage the system at defined points to prove the
// checkers catch real engine bugs (the "deliberately injected bug" of
// the harness's own acceptance tests).
type Hooks struct {
	// AfterRepair runs right after an instant repair of the drive
	// succeeds, before checkers observe the event.
	AfterRepair func(srv *server.Server, drive int) error
	// ResumeGroupOffset shifts every cluster failover's and VCR
	// re-admission's restart group by this many groups — a deliberately
	// broken handoff the cross-node continuity checker must catch. Zero
	// in real runs.
	ResumeGroupOffset int
}

// RunConfig configures one schedule execution.
type RunConfig struct {
	Schedule Schedule
	Checkers []Checker
	Hooks    Hooks
}

// Run executes one schedule under the given checkers. It returns an
// error only for malformed configuration; anything that goes wrong
// during the run — including engine errors — is reported as a
// Violation (checker "run-error") so the shrinker can minimize it like
// any other breach.
func Run(cfg RunConfig) (*RunResult, error) {
	sch := &cfg.Schedule
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	scheme, policy, err := server.ParseScheme(sch.Scheme)
	if err != nil {
		return nil, err
	}
	srv, err := server.New(server.Options{
		Disks: sch.Disks, ClusterSize: sch.ClusterSize,
		DeclusterGroup: sch.DeclusterGroup,
		Scheme:         scheme, NCPolicy: policy, K: sch.K,
		DiskParams: sch.ToSpec().DiskParams(),
		Workers:    1, // determinism holds at any count; campaigns parallelize across runs
	})
	if err != nil {
		return nil, err
	}
	trackSize := int(srv.Farm().Params().TrackSize)
	content := make(map[string][]byte, sch.Titles)
	for i := 0; i < sch.Titles; i++ {
		id := fmt.Sprintf("title%d", i)
		c := workload.SyntheticContent(id, sch.TitleGroups*(sch.ClusterSize-1)*trackSize)
		content[id] = c
		if err := srv.AddTitle(id, units.ByteSize(len(c)), i/4, c); err != nil {
			return nil, err
		}
	}
	rc := &RunContext{
		Srv: srv, Schedule: sch, Content: content, TrackSize: trackSize,
		TitleOf:     make(map[int]string),
		ResumeStart: make(map[int]int),
		Paused:      make(map[int]int),
	}

	res := &RunResult{}
	violate := func(name string, err error) *RunResult {
		res.Violation = &Violation{Checker: name, Cycle: rc.Cycle, Detail: err.Error()}
		return res
	}
	for _, c := range cfg.Checkers {
		if err := c.Begin(rc); err != nil {
			return violate(c.Name(), err), nil
		}
	}

	events := append([]Event(nil), sch.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Cycle < events[j].Cycle })
	lastEvent := 0
	for _, ev := range events {
		if ev.Cycle > lastEvent {
			lastEvent = ev.Cycle
		}
	}

	next := 0
	for cycle := 0; cycle < sch.MaxCycles; cycle++ {
		rc.Cycle = cycle
		for next < len(events) && events[next].Cycle == cycle {
			applied, err := apply(rc, events[next], cfg.Hooks)
			if err != nil {
				return violate("run-error", err), nil
			}
			if applied {
				for _, c := range cfg.Checkers {
					if obs, ok := c.(EventObserver); ok {
						if err := obs.OnEvent(rc, events[next]); err != nil {
							return violate(c.Name(), err), nil
						}
					}
				}
			}
			next++
		}
		rep, err := srv.Step()
		if err != nil {
			return violate("run-error", err), nil
		}
		res.Cycles++
		for _, c := range cfg.Checkers {
			if err := c.AfterStep(rc, rep); err != nil {
				return violate(c.Name(), err), nil
			}
		}
		if cycle >= lastEvent && srv.Engine().Active() == 0 && srv.RebuildRemaining() == 0 {
			// Two drain steps: the engine holds its references on a
			// report's buffers for two Steps (the double-buffered report
			// window the pipelined front end stages from), and the leak
			// checker needs both generations released.
			for extra := 1; extra <= 2; extra++ {
				rc.Cycle = cycle + extra
				if _, err := srv.Step(); err != nil {
					return violate("run-error", err), nil
				}
				res.Cycles++
			}
			break
		}
	}
	for _, c := range cfg.Checkers {
		if err := c.End(rc); err != nil {
			return violate(c.Name(), err), nil
		}
	}
	return res, nil
}

// apply performs one event best-effort. It reports whether the event
// took effect; errors are reserved for states a well-formed schedule
// (or any subset of one) cannot reach.
func apply(rc *RunContext, ev Event, hooks Hooks) (bool, error) {
	srv := rc.Srv
	switch ev.Kind {
	case EventAdmit:
		id, _, err := srv.Request(ev.Title)
		if err != nil {
			// Rejection (or a staging refusal) is legitimate behavior,
			// not a harness error; the admission checker owns the bound.
			return false, nil
		}
		rc.Admitted = append(rc.Admitted, id)
		rc.TitleOf[id] = ev.Title
		return true, nil
	case EventFail:
		if st, err := driveState(srv, ev.Drive); err != nil {
			return false, err
		} else if st == disk.Failed {
			return false, nil // subset re-failed a dead drive; skip
		}
		if err := srv.FailDisk(ev.Drive); err != nil {
			return false, fmt.Errorf("chaos: failing drive %d: %w", ev.Drive, err)
		}
		return true, nil
	case EventRepair:
		if st, err := driveState(srv, ev.Drive); err != nil {
			return false, err
		} else if st != disk.Failed {
			return false, nil // failure was shrunk away; repair is a no-op
		}
		if err := srv.RepairDisk(ev.Drive); err != nil {
			return false, fmt.Errorf("chaos: repairing drive %d: %w", ev.Drive, err)
		}
		if hooks.AfterRepair != nil {
			if err := hooks.AfterRepair(srv, ev.Drive); err != nil {
				return false, fmt.Errorf("chaos: AfterRepair hook on drive %d: %w", ev.Drive, err)
			}
		}
		return true, nil
	case EventRebuild:
		if st, err := driveState(srv, ev.Drive); err != nil {
			return false, err
		} else if st != disk.Failed {
			return false, nil
		}
		if err := srv.StartOnlineRebuild(ev.Drive, ev.Budget); err != nil {
			return false, fmt.Errorf("chaos: starting rebuild of drive %d: %w", ev.Drive, err)
		}
		return true, nil
	case EventCancel:
		if ev.Stream >= len(rc.Admitted) {
			return false, nil // admission was shrunk away
		}
		// Cancelling a parked stream is just a hang-up of the session.
		if _, ok := rc.Paused[ev.Stream]; ok {
			delete(rc.Paused, ev.Stream)
			return true, nil
		}
		// A cancel of an already-finished stream errors; that is fine.
		if err := srv.Cancel(rc.Admitted[ev.Stream]); err != nil {
			return false, nil
		}
		return true, nil
	case EventPause:
		if ev.Stream >= len(rc.Admitted) {
			return false, nil
		}
		if _, ok := rc.Paused[ev.Stream]; ok {
			return false, nil // already parked
		}
		next, _, ok := srv.StreamProgress(rc.Admitted[ev.Stream])
		if !ok {
			return false, nil // stream finished or was cancelled
		}
		if err := srv.Cancel(rc.Admitted[ev.Stream]); err != nil {
			return false, nil
		}
		rc.Paused[ev.Stream] = next
		return true, nil
	case EventVcrResume:
		next, ok := rc.Paused[ev.Stream]
		if !ok {
			return false, nil // pause was shrunk away (or resume already ran)
		}
		width := rc.Schedule.ClusterSize - 1
		id, _, err := srv.RequestAt(rc.TitleOf[rc.Admitted[ev.Stream]], next/width)
		if err != nil {
			return false, nil // rejection: the viewer stays parked
		}
		rc.TitleOf[id] = rc.TitleOf[rc.Admitted[ev.Stream]]
		rc.ResumeStart[id] = (next / width) * width
		rc.Admitted[ev.Stream] = id
		delete(rc.Paused, ev.Stream)
		return true, nil
	case EventFF:
		if ev.Stream >= len(rc.Admitted) {
			return false, nil
		}
		if _, ok := rc.Paused[ev.Stream]; ok {
			return false, nil // parked streams draw nothing; nothing to speed up
		}
		// Refusals (k′ bound) and engines without rate support both leave
		// the stream playing at 1x — legitimate, not a harness error.
		if err := srv.SetStreamRate(rc.Admitted[ev.Stream], ev.Rate); err != nil {
			return false, nil
		}
		return true, nil
	case EventRewind:
		if ev.Stream >= len(rc.Admitted) {
			return false, nil
		}
		width := rc.Schedule.ClusterSize - 1
		target := ev.Track
		if t := rc.Schedule.TitleGroups * width; target >= t {
			target = t - 1
		}
		if _, ok := rc.Paused[ev.Stream]; ok {
			rc.Paused[ev.Stream] = target // reposition the parked session
			return true, nil
		}
		if _, _, ok := srv.StreamProgress(rc.Admitted[ev.Stream]); !ok {
			return false, nil
		}
		if err := srv.Cancel(rc.Admitted[ev.Stream]); err != nil {
			return false, nil
		}
		id, _, err := srv.RequestAt(rc.TitleOf[rc.Admitted[ev.Stream]], target/width)
		if err != nil {
			rc.Paused[ev.Stream] = target // refused: park at the target
			return true, nil
		}
		rc.TitleOf[id] = rc.TitleOf[rc.Admitted[ev.Stream]]
		rc.ResumeStart[id] = (target / width) * width
		rc.Admitted[ev.Stream] = id
		return true, nil
	}
	return false, fmt.Errorf("chaos: unknown event kind %q", ev.Kind)
}

func driveState(srv *server.Server, id int) (disk.State, error) {
	drv, err := srv.Farm().Drive(id)
	if err != nil {
		return 0, err
	}
	return drv.State(), nil
}
