package sched

import (
	"bytes"
	"errors"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"ftmm/internal/buffer"
	"ftmm/internal/metrics"
)

func newTestCtx(t *testing.T) *CycleContext {
	t.Helper()
	slots, err := NewSlots(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := buffer.NewPool(0)
	if err != nil {
		t.Fatal(err)
	}
	return NewCycleContext(3, slots, pool, NewRecorder(nil))
}

func TestShardMergeIsOrdered(t *testing.T) {
	ctx := newTestCtx(t)
	a := ctx.Shard()
	b := ctx.Shard()
	// Shards share slots/pool but have private reports.
	a.Rep.DataReads = 2
	a.Rep.Delivered = append(a.Rep.Delivered, Delivery{StreamID: 1})
	b.Rep.DataReads = 3
	b.Rep.Delivered = append(b.Rep.Delivered, Delivery{StreamID: 2})
	b.Rep.Hiccups = append(b.Rep.Hiccups, Hiccup{StreamID: 2})
	ctx.MergeShards(a, b)
	if ctx.Rep.DataReads != 5 {
		t.Fatalf("merged DataReads = %d", ctx.Rep.DataReads)
	}
	if len(ctx.Rep.Delivered) != 2 || ctx.Rep.Delivered[0].StreamID != 1 || ctx.Rep.Delivered[1].StreamID != 2 {
		t.Fatalf("merge order broken: %+v", ctx.Rep.Delivered)
	}
	if len(ctx.Rep.Hiccups) != 1 {
		t.Fatal("hiccups not merged")
	}
	if a.Slots != ctx.Slots || a.Pool != ctx.Pool || a.Cycle != ctx.Cycle {
		t.Fatal("shard does not share slots/pool/cycle")
	}
}

func TestFinishStampsBufferAndMetrics(t *testing.T) {
	reg := metrics.New()
	slots, _ := NewSlots(2, 3)
	pool, _ := buffer.NewPool(0)
	ctx := NewCycleContext(0, slots, pool, NewRecorder(reg))
	if err := pool.Acquire(4); err != nil {
		t.Fatal(err)
	}
	slots.Take(0)
	ctx.Rep.DataReads = 7
	ctx.Rep.Delivered = append(ctx.Rep.Delivered, Delivery{})
	rep := ctx.Finish()
	if rep.BufferInUse != 4 {
		t.Fatalf("BufferInUse = %d, want 4", rep.BufferInUse)
	}
	snap := reg.Snapshot()
	if snap.Counters["engine_cycles"] != 1 || snap.Counters["engine_data_reads"] != 7 {
		t.Fatalf("metrics not recorded: %v", snap.Counters)
	}
	if snap.Gauges["engine_buffer_in_use_tracks"].Value != 4 {
		t.Fatal("buffer gauge not set")
	}
	if snap.Histograms["engine_slots_used_per_disk"].Count != 2 {
		t.Fatal("slot histogram did not observe both disks")
	}
}

func TestRunClustersCoversAllAndPropagatesLowestError(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		var n atomic.Int64
		if err := RunClusters(10, workers, func(cl int) error {
			n.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if n.Load() != 10 {
			t.Fatalf("workers=%d ran %d clusters", workers, n.Load())
		}

		errLow := errors.New("low")
		errHigh := errors.New("high")
		err := RunClusters(10, workers, func(cl int) error {
			switch cl {
			case 2:
				return errLow
			case 7:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d returned %v, want lowest-index error", workers, err)
		}
	}
	if err := RunClusters(0, 4, func(int) error { return errors.New("boom") }); err != nil {
		t.Fatal("n=0 ran work")
	}
}

// goid extracts the current goroutine's ID from its stack header — a
// test-only trick to observe which goroutine ran which cluster.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	fields := bytes.Fields(buf[:n])
	id, err := strconv.ParseInt(string(fields[1]), 10, 64)
	if err != nil {
		panic(err)
	}
	return id
}

// TestRunClustersStaticSharding pins the deterministic shard
// assignment: cluster cl always executes on shard ShardOf(cl, W), and
// within one shard clusters run in increasing order. The assignment is
// observable because all of one shard's clusters run on one goroutine.
func TestRunClustersStaticSharding(t *testing.T) {
	const n, workers = 11, 3
	var mu sync.Mutex
	perG := map[int64][]int{}
	if err := RunClusters(n, workers, func(cl int) error {
		id := goid()
		mu.Lock()
		defer mu.Unlock()
		perG[id] = append(perG[id], cl)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(perG) != workers {
		t.Fatalf("ran on %d goroutines, want %d", len(perG), workers)
	}
	for _, cls := range perG {
		if len(cls) == 0 {
			continue
		}
		shard := ShardOf(cls[0], workers)
		for i, cl := range cls {
			if ShardOf(cl, workers) != shard {
				t.Fatalf("goroutine mixes shards: clusters %v", cls)
			}
			if i > 0 && cl != cls[i-1]+workers {
				t.Fatalf("shard %d ran clusters out of stride order: %v", shard, cls)
			}
		}
	}
	// Every cluster of shard s is ≡ s mod workers.
	for cl := 0; cl < n; cl++ {
		if ShardOf(cl, workers) != cl%workers {
			t.Fatalf("ShardOf(%d,%d) = %d", cl, workers, ShardOf(cl, workers))
		}
	}
}
