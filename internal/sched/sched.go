// Package sched provides the shared machinery of the paper's cycle-based
// schedulers (§2): per-disk per-cycle slot budgets, the reporting types
// every scheme simulator emits, and stream bookkeeping.
//
// Time advances in cycles. During each cycle a scheme reads tracks from
// disks into buffers (ordered freely within the cycle, so one maximum
// seek per disk per cycle is charged by the disk model) while the data
// read earlier is transmitted. A disk can read at most its slot budget of
// tracks per cycle; schemes enforce the budget both at admission and when
// failures add reconstruction reads to the schedule.
package sched

import (
	"bytes"
	"fmt"

	"ftmm/internal/buffer"
	"ftmm/internal/layout"
)

// Slots tracks per-disk track-read budgets within one cycle.
type Slots struct {
	perDisk int
	used    []int
}

// NewSlots creates budgets for the given number of disks with perDisk
// track reads allowed per disk per cycle.
func NewSlots(disks, perDisk int) (*Slots, error) {
	if disks < 1 {
		return nil, fmt.Errorf("sched: disks %d must be >= 1", disks)
	}
	if perDisk < 1 {
		return nil, fmt.Errorf("sched: per-disk budget %d must be >= 1", perDisk)
	}
	return &Slots{perDisk: perDisk, used: make([]int, disks)}, nil
}

// PerDisk returns the per-disk budget.
func (s *Slots) PerDisk() int { return s.perDisk }

// Disks returns the number of disks budgeted.
func (s *Slots) Disks() int { return len(s.used) }

// check panics on an out-of-range disk index. A bad index is always a
// scheduling bug (a scheme reading a drive that does not exist), never a
// budget condition, so it must fail loudly rather than masquerade as an
// exhausted or empty budget.
func (s *Slots) check(disk int) {
	if disk < 0 || disk >= len(s.used) {
		panic(fmt.Sprintf("sched: disk index %d out of range [0,%d)", disk, len(s.used)))
	}
}

// Take consumes one slot on the disk; it reports false when the disk's
// budget is exhausted. It panics on an out-of-range disk index.
func (s *Slots) Take(disk int) bool {
	s.check(disk)
	if s.used[disk] >= s.perDisk {
		return false
	}
	s.used[disk]++
	return true
}

// Put returns one slot on the disk (used when a tentatively scheduled
// read is dropped in favor of another). It panics on an out-of-range
// index or when the disk has no slot to return.
func (s *Slots) Put(disk int) {
	s.check(disk)
	if s.used[disk] == 0 {
		panic(fmt.Sprintf("sched: Put on disk %d with no slot taken", disk))
	}
	s.used[disk]--
}

// Used returns the slots consumed on the disk this cycle. It panics on
// an out-of-range disk index.
func (s *Slots) Used(disk int) int {
	s.check(disk)
	return s.used[disk]
}

// Free returns the remaining slots on the disk this cycle. It panics on
// an out-of-range disk index.
func (s *Slots) Free(disk int) int {
	s.check(disk)
	return s.perDisk - s.used[disk]
}

// Reset clears all budgets for the next cycle.
func (s *Slots) Reset() {
	for i := range s.used {
		s.used[i] = 0
	}
}

// Delivery is one track handed to the network in a cycle.
type Delivery struct {
	StreamID int
	ObjectID string
	// Track is the object-relative data track index.
	Track int
	// Data is the delivered track content.
	Data []byte
	// Buf, when non-nil, is the refcounted handle behind Data. The
	// engine holds its own reference for two Steps (which is what bounds
	// the report's validity — the pipelined front end overlaps cycle
	// N's delivery with cycle N+1's reads); a consumer that needs Data
	// to outlive that window calls Buf.Retain and later Release instead
	// of copying.
	Buf *buffer.Ref
	// Reconstructed marks tracks rebuilt from parity rather than read.
	Reconstructed bool
}

// Hiccup is a track that was due in a cycle but could not be delivered —
// the paper's discontinuity in delivery.
type Hiccup struct {
	StreamID int
	ObjectID string
	Track    int
	// Reason explains the loss, e.g. "disk failed mid-read" or "dropped
	// in degraded-mode transition".
	Reason string
}

// CycleReport summarizes one simulated cycle.
type CycleReport struct {
	Cycle int
	// Delivered lists the tracks transmitted this cycle, in stream order.
	Delivered []Delivery
	// Hiccups lists tracks lost this cycle.
	Hiccups []Hiccup
	// DataReads and ParityReads count successful track reads this cycle.
	DataReads   int
	ParityReads int
	// Reconstructions counts tracks rebuilt from parity this cycle.
	Reconstructions int
	// Finished lists streams that completed delivery this cycle.
	Finished []int
	// Terminated lists streams dropped this cycle because the system
	// could not continue serving them (degradation of service).
	Terminated []int
	// BufferInUse is the farm-wide buffer occupancy in tracks at the end
	// of the cycle.
	BufferInUse int
}

// Reset clears the report for reuse on a new cycle, keeping the backing
// slices so steady-state cycles do not reallocate them.
func (r *CycleReport) Reset(cycle int) {
	r.Cycle = cycle
	r.Delivered = r.Delivered[:0]
	r.Hiccups = r.Hiccups[:0]
	r.Finished = r.Finished[:0]
	r.Terminated = r.Terminated[:0]
	r.DataReads = 0
	r.ParityReads = 0
	r.Reconstructions = 0
	r.BufferInUse = 0
}

// Clone deep-copies the report, including every Delivery's Data bytes.
// Engines rotate between two report structs and hold their delivered
// track buffers for two Steps, so a report (and the Data it references)
// is valid until the second-next Step — long enough for a pipelined
// consumer to stage cycle N's deliveries while the engine computes
// cycle N+1 — and no longer; callers that retain reports further must
// Clone them first.
func (r *CycleReport) Clone() *CycleReport {
	out := *r
	out.Delivered = make([]Delivery, len(r.Delivered))
	for i, d := range r.Delivered {
		d.Data = append([]byte(nil), d.Data...)
		d.Buf = nil // the clone owns a private copy, not a reference
		out.Delivered[i] = d
	}
	out.Hiccups = append([]Hiccup(nil), r.Hiccups...)
	out.Finished = append([]int(nil), r.Finished...)
	out.Terminated = append([]int(nil), r.Terminated...)
	return &out
}

// Equal reports whether two reports describe the same cycle outcome:
// same counters and the same deliveries (including content bytes),
// hiccups, finishes, and terminations in the same order. Buf handles
// are ignored — a Clone deliberately drops them — so a retained Clone
// compares Equal to the live report it was taken from for exactly as
// long as the live report remains valid. The chaos harness's retention
// checker uses this to prove engines honor the report-validity window.
func (r *CycleReport) Equal(o *CycleReport) bool {
	if r == nil || o == nil {
		return r == o
	}
	if r.Cycle != o.Cycle || r.DataReads != o.DataReads ||
		r.ParityReads != o.ParityReads || r.Reconstructions != o.Reconstructions ||
		r.BufferInUse != o.BufferInUse {
		return false
	}
	if len(r.Delivered) != len(o.Delivered) || len(r.Hiccups) != len(o.Hiccups) ||
		len(r.Finished) != len(o.Finished) || len(r.Terminated) != len(o.Terminated) {
		return false
	}
	for i := range r.Delivered {
		a, b := &r.Delivered[i], &o.Delivered[i]
		if a.StreamID != b.StreamID || a.ObjectID != b.ObjectID ||
			a.Track != b.Track || a.Reconstructed != b.Reconstructed ||
			!bytes.Equal(a.Data, b.Data) {
			return false
		}
	}
	for i := range r.Hiccups {
		if r.Hiccups[i] != o.Hiccups[i] {
			return false
		}
	}
	for i := range r.Finished {
		if r.Finished[i] != o.Finished[i] {
			return false
		}
	}
	for i := range r.Terminated {
		if r.Terminated[i] != o.Terminated[i] {
			return false
		}
	}
	return true
}

// Stream is one active delivery: a client receiving an object at its
// bandwidth, one track at a time.
type Stream struct {
	ID  int
	Obj *layout.Object
	// NextDeliver is the next data track index owed to the client.
	NextDeliver int
	// Done marks a completed stream.
	Done bool
	// Terminated marks a stream dropped due to degradation of service.
	Terminated bool
}

// Remaining returns the number of tracks still owed.
func (st *Stream) Remaining() int {
	if st.Done || st.Terminated {
		return 0
	}
	return st.Obj.Tracks - st.NextDeliver
}

// Advance records count tracks as dealt with (delivered or lost) and
// flips Done at the end of the object.
func (st *Stream) Advance(count int) {
	st.NextDeliver += count
	if st.NextDeliver >= st.Obj.Tracks {
		st.NextDeliver = st.Obj.Tracks
		st.Done = true
	}
}
