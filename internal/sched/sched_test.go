package sched

import (
	"testing"

	"ftmm/internal/layout"
	"ftmm/internal/units"
)

func TestNewSlotsValidation(t *testing.T) {
	if _, err := NewSlots(0, 1); err == nil {
		t.Error("zero disks accepted")
	}
	if _, err := NewSlots(1, 0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := NewSlots(4, 2); err != nil {
		t.Errorf("valid slots rejected: %v", err)
	}
}

func TestSlotsTakePutFree(t *testing.T) {
	s, _ := NewSlots(2, 2)
	if !s.Take(0) || !s.Take(0) {
		t.Fatal("takes within budget failed")
	}
	if s.Take(0) {
		t.Fatal("take beyond budget succeeded")
	}
	if s.Used(0) != 2 || s.Free(0) != 0 {
		t.Fatalf("used/free = %d/%d", s.Used(0), s.Free(0))
	}
	if s.Used(1) != 0 || s.Free(1) != 2 {
		t.Fatal("disk 1 affected by disk 0")
	}
	s.Put(0)
	if s.Free(0) != 1 {
		t.Fatal("Put did not free")
	}
	if !s.Take(0) {
		t.Fatal("take after put failed")
	}
	s.Reset()
	if s.Used(0) != 0 || s.Used(1) != 0 {
		t.Fatal("Reset incomplete")
	}
	if s.PerDisk() != 2 {
		t.Fatal("PerDisk")
	}
}

// mustPanic asserts fn panics — Slots misuse (an out-of-range disk or an
// unmatched Put) is a scheduling bug and must be loud, not a silent
// zero-value that lets a broken schedule limp on.
func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

func TestSlotsMisuseIsLoud(t *testing.T) {
	s, _ := NewSlots(2, 1)
	mustPanic(t, "Take(-1)", func() { s.Take(-1) })
	mustPanic(t, "Take(2)", func() { s.Take(2) })
	mustPanic(t, "Used(-1)", func() { s.Used(-1) })
	mustPanic(t, "Free(99)", func() { s.Free(99) })
	mustPanic(t, "Put(-1)", func() { s.Put(-1) })
	mustPanic(t, "Put(5)", func() { s.Put(5) })
	mustPanic(t, "unmatched Put(0)", func() { s.Put(0) })
	// Valid use still works after the panics above.
	if !s.Take(0) || s.Used(0) != 1 {
		t.Error("valid Take broken")
	}
	s.Put(0)
	if s.Used(0) != 0 {
		t.Error("valid Put broken")
	}
	if s.Disks() != 2 {
		t.Errorf("Disks = %d, want 2", s.Disks())
	}
}

func TestStreamLifecycle(t *testing.T) {
	l, err := layout.New(10, 5, 100, layout.DedicatedParity)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := l.AddObject("x", 10, 0, units.MPEG1)
	if err != nil {
		t.Fatal(err)
	}
	st := &Stream{ID: 1, Obj: obj}
	if st.Remaining() != 10 {
		t.Fatalf("Remaining = %d", st.Remaining())
	}
	st.Advance(4)
	if st.Remaining() != 6 || st.Done {
		t.Fatalf("after 4: remaining=%d done=%v", st.Remaining(), st.Done)
	}
	st.Advance(7) // overshoot clamps
	if !st.Done || st.NextDeliver != 10 || st.Remaining() != 0 {
		t.Fatalf("after overshoot: %+v", st)
	}
	term := &Stream{ID: 2, Obj: obj, Terminated: true}
	if term.Remaining() != 0 {
		t.Fatal("terminated stream has remaining tracks")
	}
}

func TestCycleReportResetKeepsBackingSlices(t *testing.T) {
	rep := &CycleReport{
		Cycle:           3,
		Delivered:       []Delivery{{StreamID: 1, Data: []byte{1, 2}}},
		Hiccups:         []Hiccup{{StreamID: 2}},
		Finished:        []int{1},
		Terminated:      []int{2},
		DataReads:       5,
		ParityReads:     1,
		Reconstructions: 1,
		BufferInUse:     9,
	}
	d0 := cap(rep.Delivered)
	rep.Reset(4)
	if rep.Cycle != 4 || len(rep.Delivered) != 0 || len(rep.Hiccups) != 0 ||
		len(rep.Finished) != 0 || len(rep.Terminated) != 0 ||
		rep.DataReads != 0 || rep.ParityReads != 0 || rep.Reconstructions != 0 || rep.BufferInUse != 0 {
		t.Fatalf("Reset left state behind: %+v", rep)
	}
	if cap(rep.Delivered) != d0 {
		t.Fatal("Reset dropped the Delivered backing slice")
	}
}

func TestCycleReportCloneIsDeep(t *testing.T) {
	data := []byte{1, 2, 3}
	rep := &CycleReport{
		Cycle:     7,
		Delivered: []Delivery{{StreamID: 1, Data: data}},
		Hiccups:   []Hiccup{{StreamID: 2, Reason: "x"}},
		Finished:  []int{1},
	}
	cl := rep.Clone()
	data[0] = 99 // mutate the original's backing bytes
	rep.Delivered[0].StreamID = 50
	rep.Finished[0] = 50
	if cl.Delivered[0].Data[0] != 1 {
		t.Fatal("Clone shares Delivery.Data bytes")
	}
	if cl.Delivered[0].StreamID != 1 || cl.Finished[0] != 1 {
		t.Fatal("Clone shares list backing arrays")
	}
}
