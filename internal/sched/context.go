package sched

import (
	"runtime"
	"sync"

	"ftmm/internal/buffer"
	"ftmm/internal/metrics"
)

// Recorder bundles the instruments every cycle engine records into. A
// Recorder built over a nil registry carries nil instruments, which are
// free no-ops, so engines record unconditionally.
type Recorder struct {
	// Cycles counts completed cycles.
	Cycles *metrics.Counter
	// DataReads/ParityReads/Reconstructions mirror the CycleReport
	// counters, accumulated across the engine's lifetime.
	DataReads, ParityReads, Reconstructions *metrics.Counter
	// Deliveries and Hiccups count tracks handed out and lost.
	Deliveries, Hiccups *metrics.Counter
	// Finished and Terminated count stream completions and degradations.
	Finished, Terminated *metrics.Counter
	// DegradedClusterCycles counts (cluster, cycle) pairs spent degraded.
	DegradedClusterCycles *metrics.Counter
	// BufferInUse tracks end-of-cycle buffer occupancy in tracks.
	BufferInUse *metrics.Gauge
	// SlotsUsed observes, per cycle, the slots consumed on each disk —
	// the per-disk slot-utilization distribution.
	SlotsUsed *metrics.Histogram
}

// NewRecorder wires a Recorder to the registry (nil registry is fine:
// every instrument becomes a no-op).
func NewRecorder(reg *metrics.Registry) *Recorder {
	return &Recorder{
		Cycles:                reg.Counter("engine_cycles"),
		DataReads:             reg.Counter("engine_data_reads"),
		ParityReads:           reg.Counter("engine_parity_reads"),
		Reconstructions:       reg.Counter("engine_reconstructions"),
		Deliveries:            reg.Counter("engine_deliveries"),
		Hiccups:               reg.Counter("engine_hiccups"),
		Finished:              reg.Counter("engine_streams_finished"),
		Terminated:            reg.Counter("engine_streams_terminated"),
		DegradedClusterCycles: reg.Counter("engine_degraded_cluster_cycles"),
		BufferInUse:           reg.Gauge("engine_buffer_in_use_tracks"),
		SlotsUsed:             reg.Histogram("engine_slots_used_per_disk", 0, 1, 2, 4, 8, 16, 32),
	}
}

// observeCycle folds one finished cycle into the instruments.
func (r *Recorder) observeCycle(rep *CycleReport, slots *Slots) {
	if r == nil {
		return
	}
	r.Cycles.Inc()
	r.DataReads.Add(int64(rep.DataReads))
	r.ParityReads.Add(int64(rep.ParityReads))
	r.Reconstructions.Add(int64(rep.Reconstructions))
	r.Deliveries.Add(int64(len(rep.Delivered)))
	r.Hiccups.Add(int64(len(rep.Hiccups)))
	r.Finished.Add(int64(len(rep.Finished)))
	r.Terminated.Add(int64(len(rep.Terminated)))
	r.BufferInUse.Set(int64(rep.BufferInUse))
	if r.SlotsUsed != nil && slots != nil {
		for d := 0; d < slots.Disks(); d++ {
			r.SlotsUsed.Observe(int64(slots.Used(d)))
		}
	}
}

// CycleContext bundles everything one cycle of a scheme engine works
// against: the per-disk slot budgets, the buffer pool, the report under
// assembly, and the metrics recorder. Engines receive one per Step from
// their shared core and, for per-cluster parallel phases, hand each
// cluster a Shard whose counters are merged back deterministically.
type CycleContext struct {
	Cycle int
	Slots *Slots
	Pool  *buffer.Pool
	Rep   *CycleReport
	Rec   *Recorder
	// spare is the off-duty half of the double-buffered report pair.
	// Reset swaps it with Rep, so the report handed out by one Step stays
	// untouched while the following Step assembles into the other one —
	// a consumer may keep reading cycle N's report (and, with the
	// engine's matching delivered-ref retention, its track bytes) while
	// the engine computes cycle N+1. See CycleReport.Clone for the
	// resulting two-Step validity window.
	spare *CycleReport
}

// NewCycleContext starts a cycle's context.
func NewCycleContext(cycle int, slots *Slots, pool *buffer.Pool, rec *Recorder) *CycleContext {
	return &CycleContext{
		Cycle: cycle,
		Slots: slots,
		Pool:  pool,
		Rep:   &CycleReport{Cycle: cycle},
		Rec:   rec,
		spare: &CycleReport{},
	}
}

// Reset rewinds the context for a new cycle: slot budgets clear and the
// report pair rotates — the spare report (last touched two cycles ago)
// empties and becomes current, while the report most recently handed out
// is parked untouched. Engines call this from a persistent context each
// Step instead of allocating fresh state, which is why reports handed
// out by Step are valid until the second-next Step, not forever (see
// CycleReport.Clone).
func (c *CycleContext) Reset(cycle int) {
	c.Cycle = cycle
	c.Slots.Reset()
	if c.spare == nil {
		c.spare = &CycleReport{}
	}
	c.Rep, c.spare = c.spare, c.Rep
	c.Rep.Reset(cycle)
}

// Shard derives a context for one cluster's share of a parallel phase:
// it shares the slot budgets, pool, and recorder but accumulates into a
// private report so concurrent clusters never contend, and so the merge
// order (cluster index) is deterministic regardless of scheduling.
func (c *CycleContext) Shard() *CycleContext {
	return &CycleContext{
		Cycle: c.Cycle,
		Slots: c.Slots,
		Pool:  c.Pool,
		Rep:   &CycleReport{Cycle: c.Cycle},
		Rec:   c.Rec,
	}
}

// MergeShards folds shard reports into this context in argument order.
// Counters add; list fields append. Callers pass shards in cluster-index
// order, which fixes the merged report independent of worker count.
func (c *CycleContext) MergeShards(shards ...*CycleContext) {
	for _, s := range shards {
		if s == nil {
			continue
		}
		r := s.Rep
		c.Rep.DataReads += r.DataReads
		c.Rep.ParityReads += r.ParityReads
		c.Rep.Reconstructions += r.Reconstructions
		c.Rep.Delivered = append(c.Rep.Delivered, r.Delivered...)
		c.Rep.Hiccups = append(c.Rep.Hiccups, r.Hiccups...)
		c.Rep.Finished = append(c.Rep.Finished, r.Finished...)
		c.Rep.Terminated = append(c.Rep.Terminated, r.Terminated...)
	}
}

// Finish stamps end-of-cycle state, feeds the recorder, and returns the
// assembled report.
func (c *CycleContext) Finish() *CycleReport {
	c.Rep.BufferInUse = c.Pool.InUse()
	c.Rec.observeCycle(c.Rep, c.Slots)
	return c.Rep
}

// Workers resolves a configured worker count: n <= 0 means GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ShardOf is the deterministic engine-shard assignment: cluster cl runs
// on shard cl mod shards. RunClusters partitions work this way, so
// which goroutine executes a given cluster is a pure function of the
// cluster index and the shard count — never of scheduling order — and a
// chaos replay or report diff at any shard count sees clusters grouped
// identically run to run.
func ShardOf(cl, shards int) int { return cl % shards }

// RunClusters runs fn(0..n-1) across at most workers engine shards
// (workers <= 0 means GOMAXPROCS; 1 runs inline). Clusters are
// statically partitioned by ShardOf — shard w runs clusters w, w+W,
// w+2W, … in increasing order — rather than pulled from a shared
// counter, so there is no cross-shard contention point on the dispatch
// path and the cluster→goroutine mapping is deterministic. Any worker
// count yields the same outcome for independent per-cluster work: when
// several clusters fail, the error of the lowest cluster index is
// returned.
func RunClusters(n, workers int, fn func(cl int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for cl := 0; cl < n; cl++ {
			if err := fn(cl); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for cl := w; cl < n; cl += workers {
				errs[cl] = fn(cl)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
