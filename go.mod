module ftmm

go 1.22
